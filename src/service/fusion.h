// Transaction fusion: the contention-manager subsystem (ISSUE 10, ROADMAP
// item 2, DESIGN.md "Transaction fusion").
//
// The paper's optimistic boosting concedes the extreme-contention regime to
// pessimistic boosting: when semantic validation keeps failing, a batch
// burns its attempt budget and the PR 5 split-retry path divides it — more,
// smaller transactions fighting over the same hot keys.  Open transactional
// memory points the other way: two transactions that conflict on a semantic
// key can be MERGED into one commit unit and both succeed.  This header
// implements that merge for the batched service plane:
//
//   * When a worker's batch exhausts its attempt budget (the semantic-
//     conflict signal), it first tries to ADOPT a conflicting peer's
//     donated batch — merging the two request sets into one commit unit
//     that validates and commits under the single existing global
//     (structure id, key) lock order.  Each constituent script still runs
//     its own guard checks inside the merged transaction (service.h
//     `apply`), so every request keeps its own sound ok() verdict.
//   * Failing that, it DONATES its own batch: it publishes a pointer to a
//     per-worker slot and spins briefly.  Healthy peers adopt donations at
//     every batch pop; a peer that is itself budget-exhausted arbitrates
//     donor-vs-donor through a lock-free union-find (src/otb/contention.h)
//     so exactly one root worker absorbs the whole conflict set.
//   * When nobody adopts within the spin budget (or OTB_FUSION_MAX_SET
//     would be exceeded), the withdrawn commit unit ESCALATES: it retries
//     once under the plane's exclusive commit gate (`gate()`).  Ordinary
//     batch attempts hold the gate shared, so the exclusive holder runs
//     with no concurrent service-plane transaction in flight and its
//     semantic validation cannot fail — the fused conflict set commits
//     instead of starving.  (A large merged transaction is otherwise the
//     perfect victim under optimistic validation: its footprint spans the
//     hot keys, every small competitor that commits invalidates it, and
//     each of its retries throws away the whole merged batch's work.)
//     Only when even the gated attempt aborts (injected faults; a guard
//     storm) does the batch fall back to split-retry — fuse first,
//     serialize second, split last.
//
// Alongside the requests, the donor ships its transaction's parked
// descriptor pool (TxHost::take_descriptor_pool): the adopter seeds its
// next attempt with them (adopt_descriptor_pool, deduplicated per
// structure), so the merged commit unit re-attaches the donor's structures
// without allocating — the TxHost merge of pooled descriptors and their
// SmallVec read/write/locked sets happens by re-executing the donated
// scripts into those descriptors.
//
// Memory-safety protocol (the part TSan is pointed at):
//   The DonatedBatch lives on the DONOR'S STACK.  Nobody may dereference a
//   slot pointer without first claiming it: adopters CAS the slot
//   (batch -> nullptr) and only then inspect the batch — on cap overflow
//   they store the pointer straight back.  The donor leaves offer_and_wait
//   only through one of two gates: (a) it wins the same slot CAS itself
//   (withdrawal — nobody can hold the pointer), or (b) it observes
//   `taken` (the adopter has finished every access).  A claim-for-
//   inspection therefore pins the donor in place, and the pointer can
//   never outlive its frame.  Slot publishes are release stores; claims
//   are acquire CASes — the batch fields and the request array are
//   published happens-before any adopter read, and the adopter's writes
//   (request copy, pool harvest) happen-before the donor's `taken` load.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "common/platform.h"
#include "metrics/sink.h"
#include "otb/contention.h"
#include "otb/otb_ds.h"
#include "service/request.h"

namespace otb::service {

// ---- knobs (mirror OTB_VALIDATION_FAST_PATH's idiom) ------------------------

namespace detail {
inline std::atomic<bool>& fusion_flag() {
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("OTB_FUSION");
    if (env == nullptr) return true;
    if ((env[0] == 'o' || env[0] == 'O') && (env[1] == 'f' || env[1] == 'F'))
      return false;  // "off"
    return !(env[0] == '0' || env[0] == 'n' || env[0] == 'N' ||
             env[0] == 'f' || env[0] == 'F');
  }()};
  return flag;
}

inline std::atomic<std::size_t>& fusion_max_set_value() {
  static std::atomic<std::size_t> cap{[] {
    const char* env = std::getenv("OTB_FUSION_MAX_SET");
    if (env != nullptr) {
      const long v = std::atol(env);
      if (v >= 2 && v <= 4096) return static_cast<std::size_t>(v);
    }
    return std::size_t{64};
  }()};
  return cap;
}
}  // namespace detail

/// Whether budget-exhausted batches fuse before they split.  On by default;
/// `OTB_FUSION=off` (or 0/no/false) disables the whole subsystem and
/// restores the pre-fusion worker loop byte for byte.
inline bool fusion_enabled() {
  return detail::fusion_flag().load(std::memory_order_relaxed);
}

/// Programmatic override (tests exercise both settings in one process).
inline void set_fusion(bool on) {
  detail::fusion_flag().store(on, std::memory_order_relaxed);
}

/// Largest merged commit unit fusion may build (requests per transaction).
/// Donations that would push an adopter past the cap stay offered; the
/// donor eventually withdraws and split-retries (`OTB_FUSION_MAX_SET`,
/// default 64, clamped to [2, 4096]).
inline std::size_t fusion_max_set() {
  return detail::fusion_max_set_value().load(std::memory_order_relaxed);
}

inline void set_fusion_max_set(std::size_t cap) {
  if (cap < 2) cap = 2;
  if (cap > 4096) cap = 4096;
  detail::fusion_max_set_value().store(cap, std::memory_order_relaxed);
}

// ---- the fusion plane -------------------------------------------------------

/// What a budget-exhausted worker publishes: its live batch (requests that
/// already passed admission and expiry checks), its commit unit's
/// union-find node, and its transaction's parked descriptor pool.  Stack-
/// resident in offer_and_wait; see the memory-safety protocol above.
struct DonatedBatch {
  Pending* const* reqs = nullptr;
  std::size_t count = 0;
  tx::UfNode* node = nullptr;
  tx::DescriptorPool* pool = nullptr;
  std::atomic<bool> taken{false};
};

/// Outcome of one donation episode, from the donor's point of view.
enum class OfferOutcome {
  kAdopted,    // a peer absorbed the batch: the donor owns nothing anymore
  kMerged,     // the donor won arbitration and absorbed a PEER's batch
               // instead: it still owns its (now larger) batch — retry it
  kWithdrawn,  // nobody fused within the spin budget: fall back to split
};

/// One per Service: `workers` donation slots plus a small ring of
/// union-find nodes per worker (recycled per batch episode — stale walkers
/// are tolerated by contention.h's bounded-hop contract, and ownership is
/// linearized by the slot CAS, never by the union-find).
class FusionPlane {
 public:
  /// Donor spin budget before withdrawing (in cpu_relax iterations).  Short:
  /// a peer mid-batch reaches its next adoption point (batch pop or budget
  /// exhaustion) within a few thousand iterations, and a donor nobody
  /// adopts loses nothing by withdrawing early — withdrawal escalates to
  /// the gated serial attempt, which resolves the batch outright.  Long
  /// waits only idle the worker.
  static constexpr unsigned kDonorSpinDefault = 1u << 12;

  FusionPlane(unsigned workers, metrics::MetricsSink* sink)
      : sink_(sink),
        slots_(workers),
        nodes_(std::size_t{workers} * kNodesPerWorker),
        episode_(workers) {
    for (unsigned w = 0; w < workers; ++w)
      episode_[w].node = &nodes_[std::size_t{w} * kNodesPerWorker];
  }
  FusionPlane(const FusionPlane&) = delete;
  FusionPlane& operator=(const FusionPlane&) = delete;

  unsigned workers() const { return static_cast<unsigned>(slots_.size()); }

  /// The plane-wide commit gate.  Ordinary batch transactions run holding
  /// it SHARED (uncontended in the common case); a withdrawn commit unit
  /// escalates by retrying once holding it EXCLUSIVE, which quiesces every
  /// concurrent service-plane writer and makes the retry's semantic
  /// validation vacuous.  Inline MV snapshot reads bypass the gate — they
  /// are read-only and abort-free, so they can neither invalidate the
  /// exclusive holder nor be hurt by it.
  std::shared_mutex& gate() { return gate_; }

  /// Start a fresh commit-unit episode for worker `w`: advance its node
  /// ring and re-arm the node.  Called once per popped batch, from the
  /// owning worker only.
  void begin_episode(unsigned w) {
    Episode& ep = episode_[w];
    ep.cursor = (ep.cursor + 1) % kNodesPerWorker;
    tx::UfNode& n = nodes_[std::size_t{w} * kNodesPerWorker + ep.cursor];
    n.reset();
    ep.node = &n;
  }

  /// Adopt every compatible donated batch into `batch`, appending the
  /// donors' requests and harvesting their descriptor pools into `pool`.
  /// Returns the number of requests adopted (0 if none).  Donations that
  /// would exceed OTB_FUSION_MAX_SET are left offered for someone smaller.
  std::size_t try_adopt(unsigned self, std::vector<Pending*>& batch,
                        tx::DescriptorPool* pool) {
    std::size_t adopted = 0;
    const std::size_t cap = fusion_max_set();
    for (unsigned w = 0; w < workers(); ++w) {
      if (w == self) continue;
      DonatedBatch* b = slots_[w].ptr.load(std::memory_order_acquire);
      if (b == nullptr) continue;
      if (!slots_[w].ptr.compare_exchange_strong(b, nullptr,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_relaxed))
        continue;
      // Exclusive access to *b from here until taken/republish.
      if (batch.size() + b->count > cap) {
        slots_[w].ptr.store(b, std::memory_order_release);
        continue;
      }
      adopted += absorb(self, batch, pool, b);
    }
    return adopted;
  }

  /// Publish `batch` for adoption and wait (bounded) for a peer to take
  /// it.  While waiting, arbitrate donor-vs-donor conflicts through the
  /// union-find: the root worker withdraws its own offer and absorbs the
  /// other's batch (kMerged), everyone else keeps waiting for the root.
  /// `spin_limit` is injectable so tests can make withdrawal immediate.
  OfferOutcome offer_and_wait(unsigned self, std::vector<Pending*>& batch,
                              tx::DescriptorPool* pool,
                              unsigned spin_limit = kDonorSpinDefault) {
    DonatedBatch b;
    b.reqs = batch.data();
    b.count = batch.size();
    b.node = episode_[self].node;
    b.pool = pool;
    slots_[self].ptr.store(&b, std::memory_order_release);
    for (unsigned spin = 0; spin < spin_limit; ++spin) {
      if (b.taken.load(std::memory_order_acquire)) {
        surrender(batch, pool);
        return OfferOutcome::kAdopted;
      }
      if ((spin & 255u) == 255u) {
        switch (arbitrate(self, batch, pool, &b)) {
          case Arbitration::kNone:
            break;
          case Arbitration::kMerged:
            return OfferOutcome::kMerged;
          case Arbitration::kSelfAdopted:
            surrender(batch, pool);
            return OfferOutcome::kAdopted;
        }
        // Give the would-be adopter a timeslice: on an oversubscribed (or
        // single-CPU) host, pause-spinning burns the exact quantum the
        // peer needs to reach its adoption point.
        std::this_thread::yield();
      }
      cpu_relax();
    }
    // Spin budget lapsed: withdraw.  The CAS can only fail if some peer
    // claimed the offer meanwhile — then it MUST either take it or put it
    // back, so spin on those two gates (bounded by the claimer's own
    // straight-line inspection code).
    for (;;) {
      DonatedBatch* expected = &b;
      if (slots_[self].ptr.compare_exchange_strong(expected, nullptr,
                                                   std::memory_order_acq_rel,
                                                   std::memory_order_relaxed)) {
        sink_->add(metrics::CounterId::kFusionFallbacks);
        return OfferOutcome::kWithdrawn;
      }
      if (b.taken.load(std::memory_order_acquire)) {
        surrender(batch, pool);
        return OfferOutcome::kAdopted;
      }
      std::this_thread::yield();  // the claimer needs CPU to finish
    }
  }

 private:
  static constexpr unsigned kNodesPerWorker = 4;

  struct alignas(64) Slot {
    std::atomic<DonatedBatch*> ptr{nullptr};
  };
  struct alignas(64) Episode {
    tx::UfNode* node = nullptr;
    unsigned cursor = 0;
  };

  enum class Arbitration { kNone, kMerged, kSelfAdopted };

  /// Merge a CLAIMED donated batch into `batch` + `pool` and release the
  /// donor.  Returns the number of requests absorbed.
  std::size_t absorb(unsigned self, std::vector<Pending*>& batch,
                     tx::DescriptorPool* pool, DonatedBatch* b) {
    batch.insert(batch.end(), b->reqs, b->reqs + b->count);
    if (pool != nullptr && b->pool != nullptr) {
      for (auto& entry : *b->pool) pool->push_back(std::move(entry));
    }
    tx::uf_unite(episode_[self].node, b->node);
    const std::size_t n = b->count;
    sink_->add(metrics::CounterId::kFusionUnions);
    sink_->add(metrics::CounterId::kSvcFused, n);
    sink_->record_fused_set_size(batch.size());
    b->taken.store(true, std::memory_order_release);
    return n;
  }

  /// The donor's ownership of `batch`/`pool` just transferred: drop the
  /// local references (the adopter completes the requests and owns the
  /// descriptors now).
  static void surrender(std::vector<Pending*>& batch, tx::DescriptorPool* pool) {
    batch.clear();
    if (pool != nullptr) pool->clear();
  }

  /// Donor-vs-donor conflict resolution while self's own offer is up.
  /// Retract our own offer FIRST (we may not touch `batch` while a peer
  /// could still claim it), then claim each peer offer for inspection and
  /// unite the two commit units — absorbing the peer only when self is the
  /// merged root and the cap allows.  If nothing was absorbed, the offer
  /// goes straight back up and the donor keeps waiting.
  Arbitration arbitrate(unsigned self, std::vector<Pending*>& batch,
                        tx::DescriptorPool* pool, DonatedBatch* mine) {
    // Cheap pre-scan: no peer offer, no reason to cycle our own.
    bool any = false;
    for (unsigned w = 0; w < workers() && !any; ++w)
      any = (w != self &&
             slots_[w].ptr.load(std::memory_order_acquire) != nullptr);
    if (!any) return Arbitration::kNone;
    // Retract our own offer.  A failed CAS means a peer holds it claimed-
    // for-inspection: it must promptly either take it (-> kSelfAdopted) or
    // republish it (-> our CAS succeeds next round), so this loop only
    // waits on straight-line peer code.
    for (;;) {
      DonatedBatch* expected = mine;
      if (slots_[self].ptr.compare_exchange_strong(expected, nullptr,
                                                   std::memory_order_acq_rel,
                                                   std::memory_order_relaxed))
        break;
      if (mine->taken.load(std::memory_order_acquire))
        return Arbitration::kSelfAdopted;
      std::this_thread::yield();  // the claimer needs CPU to finish
    }
    // We exclusively own our batch again.  Collect peers we out-rank.
    const std::size_t cap = fusion_max_set();
    std::size_t absorbed = 0;
    for (unsigned w = 0; w < workers(); ++w) {
      if (w == self) continue;
      DonatedBatch* b = slots_[w].ptr.load(std::memory_order_acquire);
      if (b == nullptr) continue;
      if (!slots_[w].ptr.compare_exchange_strong(b, nullptr,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_relaxed))
        continue;
      tx::UfNode* root = tx::uf_unite(episode_[self].node, b->node);
      if (root != episode_[self].node || batch.size() + b->count > cap) {
        // Loser (or cap): leave the peer's offer up; the root collects us.
        slots_[w].ptr.store(b, std::memory_order_release);
        continue;
      }
      absorbed += absorb(self, batch, pool, b);
    }
    if (absorbed != 0) return Arbitration::kMerged;
    // Nothing absorbed: resume the offer exactly as it was.
    slots_[self].ptr.store(mine, std::memory_order_release);
    return Arbitration::kNone;
  }

  metrics::MetricsSink* sink_;
  std::shared_mutex gate_;
  std::vector<Slot> slots_;
  std::vector<tx::UfNode> nodes_;
  std::vector<Episode> episode_;
};

}  // namespace otb::service
