// Epoll edge-triggered multi-connection TCP front end over the service
// plane.
//
// `OTB_NET_THREADS` net threads (default 1) each own an epoll instance and
// a disjoint set of connections: thread 0 additionally owns the listening
// socket and deals accepted fds round-robin to the others through a
// mutex-guarded handoff list + eventfd poke.  All transactional work stays
// on the service workers — net threads only shuttle bytes — so the adapter
// still adds no second threading model, it just shards the byte-shuttling.
//
// No periodic tick.  The PR 5 adapter polled with a 1 ms timeout because
// completions arrive from service workers, not sockets.  Here every
// completion notifies its owning net thread through the request's
// completion hook (request.h): the hook flips the thread's dirty flag and,
// only on the false→true transition, writes the thread's eventfd — one
// syscall per wakeup, not per completion.  An idle net thread blocks in
// epoll_wait(-1) indefinitely.
//
// Backpressure (per connection): once a connection's in-flight request
// count or its pending-write bytes reach the high-water marks
// (`OTB_NET_INFLIGHT_HW` / `OTB_NET_WRBUF_HW`), the thread stops reading
// that socket — unread bytes accumulate in the kernel buffer until TCP
// closes the client's window.  Admission control stays independently
// checkable: requests the service rejects still complete `kOverloaded`
// and the response frame carries that status.  Because resuming a paused
// connection gets no fresh epoll edge for bytes already buffered, resume
// re-runs the read path directly.
//
// Wire format (little-endian; u32 length prefix counts the bytes after
// itself).  Two request frame versions coexist on one connection, selected
// per frame by length (docs/SERVICE.md "Wire format"):
//
//   v1 (legacy single-op, len == 29 exactly — 14 + 29·n can never equal 29,
//   so the length disambiguates):
//     request  := u32 len | u64 id | u8 op | i64 key | i64 value
//                 | u32 deadline_ms
//     response := u32 len | u64 id | u8 status | u8 ok | i64 value
//                 | u32 n | n × (i64 key, i64 value)
//   `op` is the retired flat PR 5 opcode (0..10), translated to a
//   one-step script on receipt; v1 clients keep working unchanged.
//
//   v2 (multi-op script, len == 14 + 29·nsteps):
//     request  := u32 len | u8 ver(=2) | u8 nsteps | u32 deadline_ms
//                 | u64 id | nsteps × step
//     step     := u8 structure | u8 verb | u8 flags | i8 key_from
//                 | i8 value_from | i64 key | i64 value | i64 expect
//     response := u32 len | u8 ver(=2) | u64 id | u8 status | u8 ok
//                 | u8 nsteps | nsteps × (u8 ran, u8 ok, i64 value)
//                 | u32 n | n × (i64 key, i64 value)
//   `flags` bit0 = required, bit1 = has_expect.  A response frame's version
//   always matches its request's — a v1 client never sees v2 bytes.
//
// `id` is an opaque client token echoed back; `deadline_ms` is relative
// (0 = none) and converted to the service's absolute now_ns clock on
// receipt; `n` counts the range pairs of completed kOk requests with range
// steps.  Frame-level garbage (length matching neither version, bad v2
// version byte, nsteps outside [1, kNetMaxWireSteps], unknown verb/op byte)
// closes the connection — a length-prefixed stream cannot resynchronise
// after garbage.  SEMANTIC problems (unregistered slot, incompatible verb,
// bad binding) are the service's call: they come back as a kFailed
// response, not a hangup.
//
// Shutdown: request_stop() is async-signal-safe (a relaxed store plus
// eventfd writes, both signal-safe), so `signal(SIGTERM, handler)` can call
// it directly.  Each thread then stops accepting/reading, flushes every
// in-flight response, and waits for its outstanding completion hooks to
// retire (the `outstanding` counter is what makes destroying the server
// after run() safe: a hook never touches thread state after its decrement).
// Thread 0 joins the others and stops the service (full drain).
//
// `BasicNetServer` is templated on the service type so the same adapter
// fronts a single `Service` or a `ShardedService` (sharding.h); the
// `NetServer` alias keeps the PR 5 spelling.
#pragma once

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "metrics/registry.h"
#include "service/request.h"
#include "service/service.h"

namespace otb::service {

#if defined(__linux__)

inline constexpr std::size_t kNetRequestFrameLen = 29;  // v1 frame body
inline constexpr std::uint8_t kNetWireV2 = 2;
inline constexpr std::size_t kNetWireStepLen = 29;      // encoded v2 step
inline constexpr std::size_t kNetWireV2HeaderLen = 14;  // ver..id inclusive
/// Framing cap on v2 scripts — decoupled from the service's own
/// OTB_SVC_MAX_STEPS admission knob (a longer-than-configured script
/// decodes fine and completes kFailed; a frame above this cap is garbage).
inline constexpr std::size_t kNetMaxWireSteps = 32;

/// Retired flat PR 5 opcodes, kept only as the v1 wire vocabulary.
enum class LegacyWireOp : std::uint8_t {
  kMapGet = 0,
  kMapPut,
  kMapErase,
  kMapRange,
  kSetAdd,
  kSetRemove,
  kSetContains,
  kHeapPush,
  kHeapPopMin,
  kSlPush,
  kSlPopMin,
};

/// v1 opcode -> one-step script against the standard slot layout.
/// Returns false for an unknown opcode (caller hangs up).
inline bool legacy_wire_step(std::uint8_t op, std::int64_t key,
                             std::int64_t value, Step* out) {
  switch (static_cast<LegacyWireOp>(op)) {
    case LegacyWireOp::kMapGet: *out = map_get(key); return true;
    case LegacyWireOp::kMapPut: *out = map_put(key, value); return true;
    case LegacyWireOp::kMapErase: *out = map_erase(key); return true;
    case LegacyWireOp::kMapRange: *out = map_range(key, value); return true;
    case LegacyWireOp::kSetAdd: *out = set_add(key); return true;
    case LegacyWireOp::kSetRemove: *out = set_remove(key); return true;
    case LegacyWireOp::kSetContains: *out = set_contains(key); return true;
    case LegacyWireOp::kHeapPush: *out = heap_push(key); return true;
    case LegacyWireOp::kHeapPopMin: *out = heap_pop_min(); return true;
    case LegacyWireOp::kSlPush: *out = sl_push(key); return true;
    case LegacyWireOp::kSlPopMin: *out = sl_pop_min(); return true;
  }
  return false;
}

namespace wire {
template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &v, sizeof(T));
}
template <typename T>
T get(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}
}  // namespace wire

struct NetServerConfig {
  unsigned net_threads = 1;             // epoll threads (thread 0 accepts)
  std::size_t conn_inflight_hw = 256;   // pause reads at this many in flight
  std::size_t conn_wrbuf_hw = 1u << 20; // ... or this many unsent bytes

  /// Metrics sink; null = Registry::global().sink("otb.service.net").
  metrics::MetricsSink* metrics = nullptr;

  /// Defaults overridable from the environment (docs/KNOBS.md):
  /// OTB_NET_THREADS, OTB_NET_INFLIGHT_HW, OTB_NET_WRBUF_HW.
  static NetServerConfig from_env() {
    NetServerConfig cfg;
    cfg.net_threads = static_cast<unsigned>(
        detail::env_u64("OTB_NET_THREADS", cfg.net_threads));
    cfg.conn_inflight_hw = static_cast<std::size_t>(
        detail::env_u64("OTB_NET_INFLIGHT_HW", cfg.conn_inflight_hw));
    cfg.conn_wrbuf_hw = static_cast<std::size_t>(
        detail::env_u64("OTB_NET_WRBUF_HW", cfg.conn_wrbuf_hw));
    return cfg;
  }
};

template <typename Svc>
class BasicNetServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral; see bound_port()).  Throws
  /// nothing: check listening() before run().
  BasicNetServer(Svc& svc, std::uint16_t port,
                 NetServerConfig cfg = NetServerConfig::from_env())
      : svc_(svc),
        cfg_(sanitise(cfg)),
        sink_(cfg_.metrics != nullptr
                  ? cfg_.metrics
                  : &metrics::Registry::global().sink("otb.service.net")) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (listen_fd_ < 0) return;
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    // Backlog sized for a whole client fleet connecting before the accept
    // loop first runs (bench forks its processes pre-start).
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 512) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
        0) {
      bound_port_ = ntohs(addr.sin_port);
    }
    threads_.reserve(cfg_.net_threads);
    for (unsigned i = 0; i < cfg_.net_threads; ++i) {
      auto t = std::make_unique<NetThread>();
      t->epfd = ::epoll_create1(EPOLL_CLOEXEC);
      t->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
      bool ok = t->epfd >= 0 && t->event_fd >= 0;
      if (ok) {
        epoll_event ev{};
        ev.events = EPOLLIN;  // level-triggered: drained on every wake
        ev.data.u64 = kTagEvent;
        ok = ::epoll_ctl(t->epfd, EPOLL_CTL_ADD, t->event_fd, &ev) == 0;
      }
      if (ok && i == 0) {
        epoll_event ev{};
        ev.events = EPOLLIN;  // level-triggered: accepts until EAGAIN anyway
        ev.data.u64 = kTagListen;
        ok = ::epoll_ctl(t->epfd, EPOLL_CTL_ADD, listen_fd_, &ev) == 0;
      }
      if (!ok) {
        if (t->event_fd >= 0) ::close(t->event_fd);
        if (t->epfd >= 0) ::close(t->epfd);
        for (auto& prev : threads_) {
          ::close(prev->event_fd);
          ::close(prev->epfd);
        }
        threads_.clear();
        ::close(listen_fd_);
        listen_fd_ = -1;
        return;
      }
      threads_.push_back(std::move(t));
    }
  }

  ~BasicNetServer() {
    for (auto& t : threads_) {
      for (auto& c : t->conns) close_conn(*c);
      for (int fd : t->handoff) ::close(fd);
      if (t->event_fd >= 0) ::close(t->event_fd);
      if (t->epfd >= 0) ::close(t->epfd);
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  BasicNetServer(const BasicNetServer&) = delete;
  BasicNetServer& operator=(const BasicNetServer&) = delete;

  bool listening() const { return listen_fd_ >= 0; }
  std::uint16_t bound_port() const { return bound_port_; }
  unsigned net_threads() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// Async-signal-safe stop request (SIGTERM handlers call this): one
  /// relaxed store plus an eventfd write per net thread.
  void request_stop() {
    stop_flag_.store(true, std::memory_order_relaxed);
    const std::uint64_t one = 1;
    for (auto& t : threads_) {
      [[maybe_unused]] ssize_t r = ::write(t->event_fd, &one, sizeof(one));
    }
  }

  /// Serve until request_stop(): runs net thread 0 on the calling thread
  /// and spawns the rest.  Every thread drains its in-flight responses,
  /// then the service is stopped (full drain) before run() returns.
  void run() {
    if (!listening()) {
      svc_.stop();
      return;
    }
    for (unsigned i = 1; i < threads_.size(); ++i) {
      threads_[i]->thread = std::thread([this, i] { loop(i); });
    }
    loop(0);
    for (unsigned i = 1; i < threads_.size(); ++i) {
      if (threads_[i]->thread.joinable()) threads_[i]->thread.join();
    }
    svc_.stop();
  }

 private:
  // epoll_event.data.u64 tags; real Conn pointers can never be 0 or 1.
  static constexpr std::uint64_t kTagListen = 0;
  static constexpr std::uint64_t kTagEvent = 1;
  static constexpr int kMaxEvents = 64;

  struct InFlight {
    std::uint64_t id = 0;
    bool v2 = false;  // respond in the same frame version the request used
    ResponseFuture fut;
  };

  struct Conn {
    int fd = -1;
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> out;
    std::size_t out_off = 0;
    std::deque<InFlight> inflight;
    bool dead = false;
    bool paused = false;  // reads suspended at a high-water mark
  };

  /// Per-net-thread state.  Addresses are stable for the server's lifetime
  /// (unique_ptr in a fixed vector) because completion hooks hold raw
  /// pointers to it from arbitrary service-worker threads.
  struct NetThread {
    int epfd = -1;
    int event_fd = -1;
    // Completion-wakeup coalescing: a hook writes event_fd only on the
    // false→true transition, so a harvest wakes once per burst.
    std::atomic<bool> dirty{false};
    // Hooks not yet retired.  The drain loop waits for 0 before the thread
    // exits: a hook's decrement is its last access to this struct, so
    // outstanding == 0 (acquire) proves no hook can touch freed memory.
    std::atomic<std::uint64_t> outstanding{0};
    std::mutex handoff_mu;
    std::vector<int> handoff;  // accepted fds awaiting adoption
    std::vector<std::unique_ptr<Conn>> conns;
    std::thread thread;  // threads_[0] runs on the run() caller instead
  };

  static NetServerConfig sanitise(NetServerConfig cfg) {
    if (cfg.net_threads == 0) cfg.net_threads = 1;
    if (cfg.net_threads > 64) cfg.net_threads = 64;
    if (cfg.conn_inflight_hw == 0) cfg.conn_inflight_hw = 1;
    if (cfg.conn_wrbuf_hw < 4096) cfg.conn_wrbuf_hw = 4096;
    return cfg;
  }

  /// Request completion hook (request.h): runs on whichever thread
  /// completes the request.  Must not block and must not touch the
  /// NetThread after its own outstanding decrement.
  static void notify_completion(void* arg) {
    auto* t = static_cast<NetThread*>(arg);
    if (!t->dirty.exchange(true, std::memory_order_acq_rel)) {
      const std::uint64_t one = 1;
      [[maybe_unused]] ssize_t r = ::write(t->event_fd, &one, sizeof(one));
    }
    t->outstanding.fetch_sub(1, std::memory_order_release);
  }

  void loop(unsigned idx) {
    char name[16];
    std::snprintf(name, sizeof(name), "otb-net-%u", idx);
    set_this_thread_name(name);
    NetThread& t = *threads_[idx];
    while (!stop_flag_.load(std::memory_order_relaxed)) {
      dispatch(t, /*accepting=*/true, /*timeout_ms=*/-1);
    }
    // Drain: no new connections or frames, but every submitted request
    // still gets its response before the socket closes, and every
    // completion hook retires before the thread exits.  The finite timeout
    // here is not a serving tick — it only bounds the shutdown wait when a
    // peer stops reading its responses.
    while (in_flight_total(t) > 0 || pending_writes(t) ||
           t.outstanding.load(std::memory_order_acquire) != 0) {
      dispatch(t, /*accepting=*/false, /*timeout_ms=*/10);
    }
  }

  /// One epoll round: move bytes for ready fds, then harvest completions
  /// and reap finished connections.  `accepting` false (drain mode) stops
  /// accept() and ignores fresh request frames.
  void dispatch(NetThread& t, bool accepting, int timeout_ms) {
    epoll_event evs[kMaxEvents];
    const int n = ::epoll_wait(t.epfd, evs, kMaxEvents, timeout_ms);
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = evs[i].data.u64;
      if (tag == kTagListen) {
        if (accepting) accept_new(t);
      } else if (tag == kTagEvent) {
        std::uint64_t drained;
        while (::read(t.event_fd, &drained, sizeof(drained)) > 0) {
        }
        // Clear-after-drain keeps the invariant "dirty ⇒ eventfd readable
        // or harvest imminent": a hook firing after this exchange sees
        // false and writes the (now-empty) eventfd again.  The acq_rel
        // exchange also orders the hook's preceding status publish before
        // the harvest below.
        t.dirty.exchange(false, std::memory_order_acq_rel);
        adopt_handoffs(t, accepting);
      } else {
        Conn& c = *reinterpret_cast<Conn*>(tag);
        if ((evs[i].events & (EPOLLHUP | EPOLLERR)) != 0 && !accepting) {
          c.dead = true;  // peer gone: let the drain loop terminate
        }
        if ((evs[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0 &&
            accepting && !c.paused) {
          read_frames(t, c);
        }
        if ((evs[i].events & EPOLLOUT) != 0) flush(c);
      }
    }
    harvest(t, accepting);
    reap(t);
  }

  /// Thread 0 only: accept until EAGAIN, dealing connections round-robin
  /// across the net threads.
  void accept_new(NetThread& t0) {
    for (;;) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) return;
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      sink_->add(metrics::CounterId::kNetAccepts);
      const std::size_t target = rr_next_++ % threads_.size();
      if (target == 0) {
        add_conn(t0, fd);
        continue;
      }
      NetThread& t = *threads_[target];
      {
        std::lock_guard<std::mutex> g(t.handoff_mu);
        t.handoff.push_back(fd);
      }
      const std::uint64_t poke = 1;
      [[maybe_unused]] ssize_t r = ::write(t.event_fd, &poke, sizeof(poke));
    }
  }

  void adopt_handoffs(NetThread& t, bool accepting) {
    std::vector<int> fds;
    {
      std::lock_guard<std::mutex> g(t.handoff_mu);
      fds.swap(t.handoff);
    }
    for (int fd : fds) {
      if (!accepting) {
        ::close(fd);
        continue;
      }
      add_conn(t, fd);
    }
  }

  void add_conn(NetThread& t, int fd) {
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
    ev.data.u64 = reinterpret_cast<std::uint64_t>(conn.get());
    if (::epoll_ctl(t.epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      return;
    }
    Conn& c = *conn;
    t.conns.push_back(std::move(conn));
    // Bytes may already be queued (clients often connect-and-send before
    // the ADD above); read now rather than trust an add-time edge.
    read_frames(t, c);
  }

  /// True (and the connection paused) when either high-water mark is hit.
  bool check_pause(Conn& conn) {
    if (conn.inflight.size() < cfg_.conn_inflight_hw &&
        conn.out.size() - conn.out_off < cfg_.conn_wrbuf_hw) {
      return false;
    }
    if (!conn.paused) {
      conn.paused = true;
      sink_->add(metrics::CounterId::kNetBackpressure);
    }
    return true;
  }

  /// Decode-and-submit everything buffered, then read the socket until
  /// EAGAIN/EOF or a high-water pause.  Also the resume path: buffered
  /// bytes parse first because a paused connection gets no fresh edge for
  /// them.
  void read_frames(NetThread& t, Conn& conn) {
    parse_frames(t, conn);
    std::uint8_t buf[16384];
    while (!conn.dead && !check_pause(conn)) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn.in.insert(conn.in.end(), buf, buf + n);
        parse_frames(t, conn);
        continue;
      }
      if (n == 0) conn.dead = true;                         // orderly EOF
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) conn.dead = true;
      break;
    }
  }

  void parse_frames(NetThread& t, Conn& conn) {
    std::size_t off = 0;
    while (!conn.dead && conn.in.size() - off >= 4 && !check_pause(conn)) {
      const std::uint32_t len = wire::get<std::uint32_t>(conn.in.data() + off);
      // Version dispatch by length: exactly 29 is a v1 frame, 14 + 29·n a
      // v2 frame (the two sets are disjoint); anything else is garbage.
      const bool v1 = len == kNetRequestFrameLen;
      const bool v2_shape =
          len >= kNetWireV2HeaderLen + kNetWireStepLen &&
          (len - kNetWireV2HeaderLen) % kNetWireStepLen == 0 &&
          (len - kNetWireV2HeaderLen) / kNetWireStepLen <= kNetMaxWireSteps;
      if (!v1 && !v2_shape) {  // protocol error: cannot resync
        conn.dead = true;
        break;
      }
      if (conn.in.size() - off < 4 + len) break;
      sink_->add(metrics::CounterId::kNetFramesIn);
      if (v1) {
        decode_submit_v1(t, conn, conn.in.data() + off + 4);
      } else {
        decode_submit_v2(t, conn, conn.in.data() + off + 4, len);
      }
      off += 4 + len;
    }
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(off));
  }

  void submit(NetThread& t, Conn& conn, Request req, std::uint64_t id,
              bool v2) {
    req.on_complete = &notify_completion;
    req.on_complete_arg = &t;
    // Counted before submit(): admission failures complete inline, running
    // the hook on this thread before submit() even returns.
    t.outstanding.fetch_add(1, std::memory_order_relaxed);
    conn.inflight.push_back(InFlight{id, v2, svc_.submit(std::move(req))});
  }

  void decode_submit_v1(NetThread& t, Conn& conn, const std::uint8_t* p) {
    const std::uint64_t id = wire::get<std::uint64_t>(p);
    const std::uint8_t op = wire::get<std::uint8_t>(p + 8);
    const std::int64_t key = wire::get<std::int64_t>(p + 9);
    const std::int64_t value = wire::get<std::int64_t>(p + 17);
    Step step;
    if (!legacy_wire_step(op, key, value, &step)) {
      conn.dead = true;
      return;
    }
    Request req{step};
    const std::uint32_t deadline_ms = wire::get<std::uint32_t>(p + 25);
    if (deadline_ms != 0) {
      req.deadline_ns = now_ns() + std::uint64_t{deadline_ms} * 1'000'000ull;
    }
    submit(t, conn, std::move(req), id, /*v2=*/false);
  }

  void decode_submit_v2(NetThread& t, Conn& conn, const std::uint8_t* p,
                        std::uint32_t len) {
    if (wire::get<std::uint8_t>(p) != kNetWireV2) {
      conn.dead = true;
      return;
    }
    const std::uint8_t nsteps = wire::get<std::uint8_t>(p + 1);
    if (nsteps == 0 ||
        std::size_t{nsteps} !=
            (len - kNetWireV2HeaderLen) / kNetWireStepLen) {
      conn.dead = true;  // header and length prefix disagree
      return;
    }
    const std::uint32_t deadline_ms = wire::get<std::uint32_t>(p + 2);
    const std::uint64_t id = wire::get<std::uint64_t>(p + 6);
    Request req;
    if (deadline_ms != 0) {
      req.deadline_ns = now_ns() + std::uint64_t{deadline_ms} * 1'000'000ull;
    }
    const std::uint8_t* sp = p + kNetWireV2HeaderLen;
    for (std::uint8_t i = 0; i < nsteps; ++i, sp += kNetWireStepLen) {
      const std::uint8_t verb = wire::get<std::uint8_t>(sp + 1);
      if (verb >= kVerbCount) {  // not even a known verb: garbage frame
        conn.dead = true;
        return;
      }
      Step s;
      s.structure = wire::get<std::uint8_t>(sp);
      s.verb = static_cast<Verb>(verb);
      const std::uint8_t flags = wire::get<std::uint8_t>(sp + 2);
      s.required = (flags & 1u) != 0;
      s.has_expect = (flags & 2u) != 0;
      s.key_from = static_cast<std::int8_t>(wire::get<std::uint8_t>(sp + 3));
      s.value_from = static_cast<std::int8_t>(wire::get<std::uint8_t>(sp + 4));
      s.key = wire::get<std::int64_t>(sp + 5);
      s.value = wire::get<std::int64_t>(sp + 13);
      s.expect = wire::get<std::int64_t>(sp + 21);
      req.steps.push_back(s);
    }
    submit(t, conn, std::move(req), id, /*v2=*/true);
  }

  /// Append response frames for completed futures and flush.  Completions
  /// are encoded in FIFO order per connection; responses stall behind an
  /// incomplete older request, which keeps the client's submission order
  /// (it still matches responses by id).  Resumes paused connections whose
  /// high-water marks have cleared.
  void harvest(NetThread& t, bool accepting) {
    for (auto& c : t.conns) {
      while (!c->inflight.empty() && c->inflight.front().fut.done()) {
        encode(*c, c->inflight.front());
        c->inflight.pop_front();
      }
      flush(*c);
      if (accepting && c->paused && !c->dead) {
        c->paused = false;  // re-evaluated by check_pause on the read path
        if (!check_pause(*c)) {
          // No fresh epoll edge covers bytes that arrived while paused, so
          // resuming must run the read path directly.
          read_frames(t, *c);
          flush(*c);
        }
      }
    }
  }

  void encode(Conn& conn, const InFlight& f) {
    const SvcStatus s = f.fut.status();
    const bool with_range =
        s == SvcStatus::kOk && !f.fut.range().empty();
    const std::uint32_t n =
        with_range ? static_cast<std::uint32_t>(f.fut.range().size()) : 0;
    // Per-step results exist only for requests the worker path saw; a
    // submit-time kFailed/kOverloaded leaves `results` empty, which the
    // v2 frame carries faithfully as nsteps == 0.
    const std::uint32_t nsteps =
        f.v2 ? static_cast<std::uint32_t>(f.fut.step_count()) : 0;
    const std::uint32_t body = (f.v2 ? 1 + 8 + 1 + 1 + 1 + nsteps * 10
                                     : 8 + 1 + 1 + 8) +
                               4 + n * 16;
    wire::put<std::uint32_t>(conn.out, body);
    if (f.v2) {
      wire::put<std::uint8_t>(conn.out, kNetWireV2);
      wire::put<std::uint64_t>(conn.out, f.id);
      wire::put<std::uint8_t>(conn.out, static_cast<std::uint8_t>(s));
      wire::put<std::uint8_t>(conn.out,
                              s == SvcStatus::kOk && f.fut.ok() ? 1 : 0);
      wire::put<std::uint8_t>(conn.out, static_cast<std::uint8_t>(nsteps));
      for (std::uint32_t i = 0; i < nsteps; ++i) {
        const StepResult& r = f.fut.step(i);
        wire::put<std::uint8_t>(conn.out, r.ran ? 1 : 0);
        wire::put<std::uint8_t>(conn.out, r.ok ? 1 : 0);
        wire::put<std::int64_t>(conn.out, r.value);
      }
    } else {
      wire::put<std::uint64_t>(conn.out, f.id);
      wire::put<std::uint8_t>(conn.out, static_cast<std::uint8_t>(s));
      wire::put<std::uint8_t>(conn.out,
                              s == SvcStatus::kOk && f.fut.ok() ? 1 : 0);
      wire::put<std::int64_t>(conn.out, s == SvcStatus::kOk ? f.fut.value() : 0);
    }
    wire::put<std::uint32_t>(conn.out, n);
    if (with_range) {
      for (const auto& [k, v] : f.fut.range()) {
        wire::put<std::int64_t>(conn.out, k);
        wire::put<std::int64_t>(conn.out, v);
      }
    }
  }

  void flush(Conn& conn) {
    while (conn.out_off < conn.out.size()) {
      const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_off,
                               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      conn.dead = true;
      conn.out_off = conn.out.size();
      return;
    }
    if (conn.out_off == conn.out.size()) {
      conn.out.clear();
      conn.out_off = 0;
    }
  }

  /// Reap connections that died with nothing left to say.  A dead
  /// connection with live in-flight requests stays until they complete —
  /// nothing else guarantees the futures' refs are settled.
  void reap(NetThread& t) {
    for (std::size_t c = 0; c < t.conns.size();) {
      Conn& conn = *t.conns[c];
      if (conn.dead && conn.inflight.empty() &&
          conn.out_off >= conn.out.size()) {
        close_conn(conn);
        t.conns.erase(t.conns.begin() + static_cast<std::ptrdiff_t>(c));
      } else {
        ++c;
      }
    }
  }

  std::size_t in_flight_total(const NetThread& t) const {
    std::size_t n = 0;
    for (const auto& c : t.conns) n += c->inflight.size();
    return n;
  }

  bool pending_writes(const NetThread& t) const {
    for (const auto& c : t.conns) {
      if (c->out_off < c->out.size()) return true;
    }
    return false;
  }

  void close_conn(Conn& conn) {
    if (conn.fd >= 0) ::close(conn.fd);
    conn.fd = -1;
  }

  Svc& svc_;
  NetServerConfig cfg_;
  metrics::MetricsSink* sink_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::size_t rr_next_ = 0;  // thread 0 only
  std::vector<std::unique_ptr<NetThread>> threads_;
  std::atomic<bool> stop_flag_{false};
};

/// The PR 5 spelling: the adapter over one in-process Service.
using NetServer = BasicNetServer<Service>;

#endif  // defined(__linux__)

}  // namespace otb::service
