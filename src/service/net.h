// Thin length-prefixed binary TCP adapter over the service plane.
//
// One poll()-driven thread owns every socket: it accepts connections,
// decodes request frames, submits them to the in-process Service, and
// writes response frames back as their futures complete.  The adapter adds
// no second threading model — all transactional work stays on the service
// workers; this thread only shuttles bytes — so it is deliberately an
// *adapter*, not a server framework.
//
// Wire format (little-endian; u32 length prefix counts the bytes after
// itself).  Two request frame versions coexist on one connection, selected
// per frame by length (docs/SERVICE.md "Wire format"):
//
//   v1 (legacy single-op, len == 29 exactly — 14 + 29·n can never equal 29,
//   so the length disambiguates):
//     request  := u32 len | u64 id | u8 op | i64 key | i64 value
//                 | u32 deadline_ms
//     response := u32 len | u64 id | u8 status | u8 ok | i64 value
//                 | u32 n | n × (i64 key, i64 value)
//   `op` is the retired flat PR 5 opcode (0..10), translated to a
//   one-step script on receipt; v1 clients keep working unchanged.
//
//   v2 (multi-op script, len == 14 + 29·nsteps):
//     request  := u32 len | u8 ver(=2) | u8 nsteps | u32 deadline_ms
//                 | u64 id | nsteps × step
//     step     := u8 structure | u8 verb | u8 flags | i8 key_from
//                 | i8 value_from | i64 key | i64 value | i64 expect
//     response := u32 len | u8 ver(=2) | u64 id | u8 status | u8 ok
//                 | u8 nsteps | nsteps × (u8 ran, u8 ok, i64 value)
//                 | u32 n | n × (i64 key, i64 value)
//   `flags` bit0 = required, bit1 = has_expect.  A response frame's version
//   always matches its request's — a v1 client never sees v2 bytes.
//
// `id` is an opaque client token echoed back; `deadline_ms` is relative
// (0 = none) and converted to the service's absolute now_ns clock on
// receipt; `n` counts the range pairs of completed kOk requests with range
// steps.  Frame-level garbage (length matching neither version, bad v2
// version byte, nsteps outside [1, kNetMaxWireSteps], unknown verb/op byte)
// closes the connection — a length-prefixed stream cannot resynchronise
// after garbage.  SEMANTIC problems (unregistered slot, incompatible verb,
// bad binding) are the service's call: they come back as a kFailed
// response, not a hangup.
//
// Shutdown: NetServer::request_stop() is async-signal-safe (one relaxed
// store), so `signal(SIGTERM, handler)` can call it directly.  The loop
// then stops accepting, waits for in-flight responses to flush, stops the
// service (full drain), and returns from run().
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <vector>

#if defined(__linux__)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "service/request.h"
#include "service/service.h"

namespace otb::service {

#if defined(__linux__)

inline constexpr std::size_t kNetRequestFrameLen = 29;  // v1 frame body
inline constexpr std::uint8_t kNetWireV2 = 2;
inline constexpr std::size_t kNetWireStepLen = 29;      // encoded v2 step
inline constexpr std::size_t kNetWireV2HeaderLen = 14;  // ver..id inclusive
/// Framing cap on v2 scripts — decoupled from the service's own
/// OTB_SVC_MAX_STEPS admission knob (a longer-than-configured script
/// decodes fine and completes kFailed; a frame above this cap is garbage).
inline constexpr std::size_t kNetMaxWireSteps = 32;

/// Retired flat PR 5 opcodes, kept only as the v1 wire vocabulary.
enum class LegacyWireOp : std::uint8_t {
  kMapGet = 0,
  kMapPut,
  kMapErase,
  kMapRange,
  kSetAdd,
  kSetRemove,
  kSetContains,
  kHeapPush,
  kHeapPopMin,
  kSlPush,
  kSlPopMin,
};

/// v1 opcode -> one-step script against the standard slot layout.
/// Returns false for an unknown opcode (caller hangs up).
inline bool legacy_wire_step(std::uint8_t op, std::int64_t key,
                             std::int64_t value, Step* out) {
  switch (static_cast<LegacyWireOp>(op)) {
    case LegacyWireOp::kMapGet: *out = map_get(key); return true;
    case LegacyWireOp::kMapPut: *out = map_put(key, value); return true;
    case LegacyWireOp::kMapErase: *out = map_erase(key); return true;
    case LegacyWireOp::kMapRange: *out = map_range(key, value); return true;
    case LegacyWireOp::kSetAdd: *out = set_add(key); return true;
    case LegacyWireOp::kSetRemove: *out = set_remove(key); return true;
    case LegacyWireOp::kSetContains: *out = set_contains(key); return true;
    case LegacyWireOp::kHeapPush: *out = heap_push(key); return true;
    case LegacyWireOp::kHeapPopMin: *out = heap_pop_min(); return true;
    case LegacyWireOp::kSlPush: *out = sl_push(key); return true;
    case LegacyWireOp::kSlPopMin: *out = sl_pop_min(); return true;
  }
  return false;
}

namespace wire {
template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &v, sizeof(T));
}
template <typename T>
T get(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}
}  // namespace wire

class NetServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral; see bound_port()).  Throws
  /// nothing: check listening() before run().
  NetServer(Service& svc, std::uint16_t port) : svc_(svc) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (listen_fd_ < 0) return;
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
        0) {
      bound_port_ = ntohs(addr.sin_port);
    }
  }

  ~NetServer() {
    for (auto& c : conns_) close_conn(*c);
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  bool listening() const { return listen_fd_ >= 0; }
  std::uint16_t bound_port() const { return bound_port_; }

  /// Async-signal-safe stop request (SIGTERM handlers call this).
  void request_stop() { stop_flag_.store(true, std::memory_order_relaxed); }

  /// Serve until request_stop(); drains in-flight responses and stops the
  /// service before returning.
  void run() {
    while (!stop_flag_.load(std::memory_order_relaxed)) {
      pump(/*accepting=*/true);
    }
    // Drain: no new connections or frames, but every submitted request
    // still gets its response before the socket closes.
    while (in_flight_total() > 0 || pending_writes()) {
      pump(/*accepting=*/false);
    }
    svc_.stop();
  }

 private:
  struct InFlight {
    std::uint64_t id = 0;
    bool v2 = false;  // respond in the same frame version the request used
    ResponseFuture fut;
  };

  struct Conn {
    int fd = -1;
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> out;
    std::size_t out_off = 0;
    std::deque<InFlight> inflight;
    bool dead = false;
  };

  /// One poll round: harvest completions, then move bytes.  `accepting`
  /// false (drain mode) stops accept() and ignores fresh request frames.
  void pump(bool accepting) {
    harvest();
    // accept_new() below can append to conns_ mid-round; only the first
    // `polled` connections have a pollfd entry, so the revents loop must
    // not run past them (fresh connections get polled next round).
    const std::size_t polled = conns_.size();
    std::vector<pollfd> fds;
    fds.reserve(polled + 1);
    if (accepting) {
      fds.push_back({listen_fd_, POLLIN, 0});
    }
    for (auto& c : conns_) {
      short ev = accepting ? POLLIN : 0;
      if (c->out_off < c->out.size()) ev |= POLLOUT;
      fds.push_back({c->fd, ev, 0});
    }
    // Short timeout: completions arrive from service workers, not sockets,
    // so the loop must wake to harvest even when no fd is ready.
    ::poll(fds.data(), fds.size(), /*timeout_ms=*/1);
    std::size_t i = 0;
    if (accepting) {
      if ((fds[i].revents & POLLIN) != 0) accept_new();
      ++i;
    }
    for (std::size_t c = 0; c < polled; ++c, ++i) {
      Conn& conn = *conns_[c];
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0 && accepting) {
        read_frames(conn);
      }
      if ((fds[i].revents & POLLOUT) != 0) flush(conn);
    }
    // Reap connections that died with nothing left to say.
    for (std::size_t c = 0; c < conns_.size();) {
      Conn& conn = *conns_[c];
      if (conn.dead && conn.inflight.empty() &&
          conn.out_off >= conn.out.size()) {
        close_conn(conn);
        conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(c));
      } else {
        ++c;
      }
    }
  }

  void accept_new() {
    for (;;) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) return;
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conns_.push_back(std::move(conn));
    }
  }

  void read_frames(Conn& conn) {
    std::uint8_t buf[4096];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn.in.insert(conn.in.end(), buf, buf + n);
        continue;
      }
      if (n == 0) conn.dead = true;                       // orderly EOF
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) conn.dead = true;
      break;
    }
    std::size_t off = 0;
    while (conn.in.size() - off >= 4) {
      const std::uint32_t len = wire::get<std::uint32_t>(conn.in.data() + off);
      // Version dispatch by length: exactly 29 is a v1 frame, 14 + 29·n a
      // v2 frame (the two sets are disjoint); anything else is garbage.
      const bool v1 = len == kNetRequestFrameLen;
      const bool v2_shape =
          len >= kNetWireV2HeaderLen + kNetWireStepLen &&
          (len - kNetWireV2HeaderLen) % kNetWireStepLen == 0 &&
          (len - kNetWireV2HeaderLen) / kNetWireStepLen <= kNetMaxWireSteps;
      if (!v1 && !v2_shape) {  // protocol error: cannot resync
        conn.dead = true;
        break;
      }
      if (conn.in.size() - off < 4 + len) break;
      if (v1) {
        decode_submit_v1(conn, conn.in.data() + off + 4);
      } else {
        decode_submit_v2(conn, conn.in.data() + off + 4, len);
      }
      off += 4 + len;
    }
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(off));
  }

  void decode_submit_v1(Conn& conn, const std::uint8_t* p) {
    const std::uint64_t id = wire::get<std::uint64_t>(p);
    const std::uint8_t op = wire::get<std::uint8_t>(p + 8);
    const std::int64_t key = wire::get<std::int64_t>(p + 9);
    const std::int64_t value = wire::get<std::int64_t>(p + 17);
    Step step;
    if (!legacy_wire_step(op, key, value, &step)) {
      conn.dead = true;
      return;
    }
    Request req{step};
    const std::uint32_t deadline_ms = wire::get<std::uint32_t>(p + 25);
    if (deadline_ms != 0) {
      req.deadline_ns = now_ns() + std::uint64_t{deadline_ms} * 1'000'000ull;
    }
    conn.inflight.push_back(InFlight{id, /*v2=*/false, svc_.submit(req)});
  }

  void decode_submit_v2(Conn& conn, const std::uint8_t* p, std::uint32_t len) {
    if (wire::get<std::uint8_t>(p) != kNetWireV2) {
      conn.dead = true;
      return;
    }
    const std::uint8_t nsteps = wire::get<std::uint8_t>(p + 1);
    if (nsteps == 0 ||
        std::size_t{nsteps} !=
            (len - kNetWireV2HeaderLen) / kNetWireStepLen) {
      conn.dead = true;  // header and length prefix disagree
      return;
    }
    const std::uint32_t deadline_ms = wire::get<std::uint32_t>(p + 2);
    const std::uint64_t id = wire::get<std::uint64_t>(p + 6);
    Request req;
    if (deadline_ms != 0) {
      req.deadline_ns = now_ns() + std::uint64_t{deadline_ms} * 1'000'000ull;
    }
    const std::uint8_t* sp = p + kNetWireV2HeaderLen;
    for (std::uint8_t i = 0; i < nsteps; ++i, sp += kNetWireStepLen) {
      const std::uint8_t verb = wire::get<std::uint8_t>(sp + 1);
      if (verb >= kVerbCount) {  // not even a known verb: garbage frame
        conn.dead = true;
        return;
      }
      Step s;
      s.structure = wire::get<std::uint8_t>(sp);
      s.verb = static_cast<Verb>(verb);
      const std::uint8_t flags = wire::get<std::uint8_t>(sp + 2);
      s.required = (flags & 1u) != 0;
      s.has_expect = (flags & 2u) != 0;
      s.key_from = static_cast<std::int8_t>(wire::get<std::uint8_t>(sp + 3));
      s.value_from = static_cast<std::int8_t>(wire::get<std::uint8_t>(sp + 4));
      s.key = wire::get<std::int64_t>(sp + 5);
      s.value = wire::get<std::int64_t>(sp + 13);
      s.expect = wire::get<std::int64_t>(sp + 21);
      req.steps.push_back(s);
    }
    conn.inflight.push_back(InFlight{id, /*v2=*/true, svc_.submit(req)});
  }

  /// Append response frames for completed futures.  Completions are
  /// encoded in FIFO order per connection; responses stall behind an
  /// incomplete older request, which keeps the client's submission order
  /// (it still matches responses by id).
  void harvest() {
    for (auto& c : conns_) {
      while (!c->inflight.empty() && c->inflight.front().fut.done()) {
        encode(*c, c->inflight.front());
        c->inflight.pop_front();
      }
      flush(*c);
    }
  }

  void encode(Conn& conn, const InFlight& f) {
    const SvcStatus s = f.fut.status();
    const bool with_range =
        s == SvcStatus::kOk && !f.fut.range().empty();
    const std::uint32_t n =
        with_range ? static_cast<std::uint32_t>(f.fut.range().size()) : 0;
    // Per-step results exist only for requests the worker path saw; a
    // submit-time kFailed/kOverloaded leaves `results` empty, which the
    // v2 frame carries faithfully as nsteps == 0.
    const std::uint32_t nsteps =
        f.v2 ? static_cast<std::uint32_t>(f.fut.step_count()) : 0;
    const std::uint32_t body = (f.v2 ? 1 + 8 + 1 + 1 + 1 + nsteps * 10
                                     : 8 + 1 + 1 + 8) +
                               4 + n * 16;
    wire::put<std::uint32_t>(conn.out, body);
    if (f.v2) {
      wire::put<std::uint8_t>(conn.out, kNetWireV2);
      wire::put<std::uint64_t>(conn.out, f.id);
      wire::put<std::uint8_t>(conn.out, static_cast<std::uint8_t>(s));
      wire::put<std::uint8_t>(conn.out,
                              s == SvcStatus::kOk && f.fut.ok() ? 1 : 0);
      wire::put<std::uint8_t>(conn.out, static_cast<std::uint8_t>(nsteps));
      for (std::uint32_t i = 0; i < nsteps; ++i) {
        const StepResult& r = f.fut.step(i);
        wire::put<std::uint8_t>(conn.out, r.ran ? 1 : 0);
        wire::put<std::uint8_t>(conn.out, r.ok ? 1 : 0);
        wire::put<std::int64_t>(conn.out, r.value);
      }
    } else {
      wire::put<std::uint64_t>(conn.out, f.id);
      wire::put<std::uint8_t>(conn.out, static_cast<std::uint8_t>(s));
      wire::put<std::uint8_t>(conn.out,
                              s == SvcStatus::kOk && f.fut.ok() ? 1 : 0);
      wire::put<std::int64_t>(conn.out, s == SvcStatus::kOk ? f.fut.value() : 0);
    }
    wire::put<std::uint32_t>(conn.out, n);
    if (with_range) {
      for (const auto& [k, v] : f.fut.range()) {
        wire::put<std::int64_t>(conn.out, k);
        wire::put<std::int64_t>(conn.out, v);
      }
    }
  }

  void flush(Conn& conn) {
    while (conn.out_off < conn.out.size()) {
      const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_off,
                               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      conn.dead = true;
      conn.out_off = conn.out.size();
      return;
    }
    if (conn.out_off == conn.out.size()) {
      conn.out.clear();
      conn.out_off = 0;
    }
  }

  std::size_t in_flight_total() const {
    std::size_t n = 0;
    for (const auto& c : conns_) n += c->inflight.size();
    return n;
  }

  bool pending_writes() const {
    for (const auto& c : conns_) {
      if (c->out_off < c->out.size()) return true;
    }
    return false;
  }

  void close_conn(Conn& conn) {
    if (conn.fd >= 0) ::close(conn.fd);
    conn.fd = -1;
  }

  Service& svc_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::atomic<bool> stop_flag_{false};
};

#endif  // defined(__linux__)

}  // namespace otb::service
