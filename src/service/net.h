// Thin length-prefixed binary TCP adapter over the service plane.
//
// One poll()-driven thread owns every socket: it accepts connections,
// decodes request frames, submits them to the in-process Service, and
// writes response frames back as their futures complete.  The adapter adds
// no second threading model — all transactional work stays on the service
// workers; this thread only shuttles bytes — so it is deliberately an
// *adapter*, not a server framework.
//
// Wire format (little-endian; u32 length prefix counts the bytes after
// itself):
//   request  := u32 len | u64 id | u8 op | i64 key | i64 value
//               | u32 deadline_ms                      (len == 29)
//   response := u32 len | u64 id | u8 status | u8 ok | i64 value
//               | u32 n | n × (i64 key, i64 value)
// `id` is an opaque client token echoed back; `deadline_ms` is relative
// (0 = none) and converted to the service's absolute now_ns clock on
// receipt; `n` is nonzero only for completed kMapRange requests.  Malformed
// frames (bad length or op) close the connection — a length-prefixed stream
// cannot resynchronise after garbage.
//
// Shutdown: NetServer::request_stop() is async-signal-safe (one relaxed
// store), so `signal(SIGTERM, handler)` can call it directly.  The loop
// then stops accepting, waits for in-flight responses to flush, stops the
// service (full drain), and returns from run().
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <vector>

#if defined(__linux__)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "service/request.h"
#include "service/service.h"

namespace otb::service {

#if defined(__linux__)

inline constexpr std::size_t kNetRequestFrameLen = 29;

namespace wire {
template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &v, sizeof(T));
}
template <typename T>
T get(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}
}  // namespace wire

class NetServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral; see bound_port()).  Throws
  /// nothing: check listening() before run().
  NetServer(Service& svc, std::uint16_t port) : svc_(svc) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (listen_fd_ < 0) return;
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
        0) {
      bound_port_ = ntohs(addr.sin_port);
    }
  }

  ~NetServer() {
    for (auto& c : conns_) close_conn(*c);
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  bool listening() const { return listen_fd_ >= 0; }
  std::uint16_t bound_port() const { return bound_port_; }

  /// Async-signal-safe stop request (SIGTERM handlers call this).
  void request_stop() { stop_flag_.store(true, std::memory_order_relaxed); }

  /// Serve until request_stop(); drains in-flight responses and stops the
  /// service before returning.
  void run() {
    while (!stop_flag_.load(std::memory_order_relaxed)) {
      pump(/*accepting=*/true);
    }
    // Drain: no new connections or frames, but every submitted request
    // still gets its response before the socket closes.
    while (in_flight_total() > 0 || pending_writes()) {
      pump(/*accepting=*/false);
    }
    svc_.stop();
  }

 private:
  struct InFlight {
    std::uint64_t id = 0;
    ResponseFuture fut;
  };

  struct Conn {
    int fd = -1;
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> out;
    std::size_t out_off = 0;
    std::deque<InFlight> inflight;
    bool dead = false;
  };

  /// One poll round: harvest completions, then move bytes.  `accepting`
  /// false (drain mode) stops accept() and ignores fresh request frames.
  void pump(bool accepting) {
    harvest();
    // accept_new() below can append to conns_ mid-round; only the first
    // `polled` connections have a pollfd entry, so the revents loop must
    // not run past them (fresh connections get polled next round).
    const std::size_t polled = conns_.size();
    std::vector<pollfd> fds;
    fds.reserve(polled + 1);
    if (accepting) {
      fds.push_back({listen_fd_, POLLIN, 0});
    }
    for (auto& c : conns_) {
      short ev = accepting ? POLLIN : 0;
      if (c->out_off < c->out.size()) ev |= POLLOUT;
      fds.push_back({c->fd, ev, 0});
    }
    // Short timeout: completions arrive from service workers, not sockets,
    // so the loop must wake to harvest even when no fd is ready.
    ::poll(fds.data(), fds.size(), /*timeout_ms=*/1);
    std::size_t i = 0;
    if (accepting) {
      if ((fds[i].revents & POLLIN) != 0) accept_new();
      ++i;
    }
    for (std::size_t c = 0; c < polled; ++c, ++i) {
      Conn& conn = *conns_[c];
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0 && accepting) {
        read_frames(conn);
      }
      if ((fds[i].revents & POLLOUT) != 0) flush(conn);
    }
    // Reap connections that died with nothing left to say.
    for (std::size_t c = 0; c < conns_.size();) {
      Conn& conn = *conns_[c];
      if (conn.dead && conn.inflight.empty() &&
          conn.out_off >= conn.out.size()) {
        close_conn(conn);
        conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(c));
      } else {
        ++c;
      }
    }
  }

  void accept_new() {
    for (;;) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) return;
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conns_.push_back(std::move(conn));
    }
  }

  void read_frames(Conn& conn) {
    std::uint8_t buf[4096];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn.in.insert(conn.in.end(), buf, buf + n);
        continue;
      }
      if (n == 0) conn.dead = true;                       // orderly EOF
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) conn.dead = true;
      break;
    }
    std::size_t off = 0;
    while (conn.in.size() - off >= 4) {
      const std::uint32_t len = wire::get<std::uint32_t>(conn.in.data() + off);
      if (len != kNetRequestFrameLen) {  // protocol error: cannot resync
        conn.dead = true;
        break;
      }
      if (conn.in.size() - off < 4 + len) break;
      decode_submit(conn, conn.in.data() + off + 4);
      off += 4 + len;
    }
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(off));
  }

  void decode_submit(Conn& conn, const std::uint8_t* p) {
    const std::uint64_t id = wire::get<std::uint64_t>(p);
    const std::uint8_t op = wire::get<std::uint8_t>(p + 8);
    if (op > static_cast<std::uint8_t>(Op::kSlPopMin)) {
      conn.dead = true;
      return;
    }
    Request req;
    req.op = static_cast<Op>(op);
    req.key = wire::get<std::int64_t>(p + 9);
    req.value = wire::get<std::int64_t>(p + 17);
    const std::uint32_t deadline_ms = wire::get<std::uint32_t>(p + 25);
    if (deadline_ms != 0) {
      req.deadline_ns = now_ns() + std::uint64_t{deadline_ms} * 1'000'000ull;
    }
    conn.inflight.push_back(InFlight{id, svc_.submit(req)});
  }

  /// Append response frames for completed futures.  Completions are
  /// encoded in FIFO order per connection; responses stall behind an
  /// incomplete older request, which keeps the client's submission order
  /// (it still matches responses by id).
  void harvest() {
    for (auto& c : conns_) {
      while (!c->inflight.empty() && c->inflight.front().fut.done()) {
        encode(*c, c->inflight.front());
        c->inflight.pop_front();
      }
      flush(*c);
    }
  }

  void encode(Conn& conn, const InFlight& f) {
    const SvcStatus s = f.fut.status();
    const bool with_range =
        s == SvcStatus::kOk && !f.fut.range().empty();
    const std::uint32_t n =
        with_range ? static_cast<std::uint32_t>(f.fut.range().size()) : 0;
    wire::put<std::uint32_t>(conn.out, 8 + 1 + 1 + 8 + 4 + n * 16);
    wire::put<std::uint64_t>(conn.out, f.id);
    wire::put<std::uint8_t>(conn.out, static_cast<std::uint8_t>(s));
    wire::put<std::uint8_t>(conn.out, s == SvcStatus::kOk && f.fut.ok() ? 1 : 0);
    wire::put<std::int64_t>(conn.out, s == SvcStatus::kOk ? f.fut.value() : 0);
    wire::put<std::uint32_t>(conn.out, n);
    if (with_range) {
      for (const auto& [k, v] : f.fut.range()) {
        wire::put<std::int64_t>(conn.out, k);
        wire::put<std::int64_t>(conn.out, v);
      }
    }
  }

  void flush(Conn& conn) {
    while (conn.out_off < conn.out.size()) {
      const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_off,
                               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      conn.dead = true;
      conn.out_off = conn.out.size();
      return;
    }
    if (conn.out_off == conn.out.size()) {
      conn.out.clear();
      conn.out_off = 0;
    }
  }

  std::size_t in_flight_total() const {
    std::size_t n = 0;
    for (const auto& c : conns_) n += c->inflight.size();
    return n;
  }

  bool pending_writes() const {
    for (const auto& c : conns_) {
      if (c->out_off < c->out.size()) return true;
    }
    return false;
  }

  void close_conn(Conn& conn) {
    if (conn.fd >= 0) ::close(conn.fd);
    conn.fd = -1;
  }

  Service& svc_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::atomic<bool> stop_flag_{false};
};

#endif  // defined(__linux__)

}  // namespace otb::service
