// The service's structure table (split out of service.h so the durability
// layer — wal.h / recovery.h — can address slots without pulling in the
// whole service plane).
#pragma once

#include <cstddef>

#include "otb/otb_heap_pq.h"
#include "otb/otb_list_map.h"
#include "otb/otb_list_set.h"
#include "otb/otb_skiplist_pq.h"
#include "service/request.h"

namespace otb::service {

/// The service's structure table: each registered structure occupies one
/// slot, and a `Step` names its target by slot index (`StructureId`).
/// A service registers any mix of structures in any order; the canonical
/// `standard()` layout (map=0, set=1, heap=2, skip-list PQ=3) is what the
/// step factories in request.h default to.  A null slot stays addressable
/// but fails validation, so "this service does not expose a set" keeps the
/// old kFailed semantics.
struct Targets {
  static constexpr std::size_t kMaxStructures = 16;

  struct Slot {
    StructureKind kind = StructureKind::kMap;
    void* ptr = nullptr;
  };

  Slot slots[kMaxStructures] = {};
  std::size_t count = 0;

  StructureId add_map(tx::OtbListMap* m) { return add(StructureKind::kMap, m); }
  StructureId add_set(tx::OtbListSet* s) { return add(StructureKind::kSet, s); }
  StructureId add_heap_pq(tx::OtbHeapPQ* q) {
    return add(StructureKind::kHeapPq, q);
  }
  StructureId add_sl_pq(tx::OtbSkipListPQ* q) {
    return add(StructureKind::kSlPq, q);
  }

  /// Canonical four-slot layout matching request.h's factory defaults.
  /// Null pointers register empty slots (addressable, never valid).
  static Targets standard(tx::OtbListMap* map = nullptr,
                          tx::OtbListSet* set = nullptr,
                          tx::OtbHeapPQ* heap_pq = nullptr,
                          tx::OtbSkipListPQ* sl_pq = nullptr) {
    Targets t;
    t.add_map(map);
    t.add_set(set);
    t.add_heap_pq(heap_pq);
    t.add_sl_pq(sl_pq);
    return t;
  }

  /// Slot exists, holds a structure, and the verb fits its kind.
  bool valid_step(const Step& s) const {
    if (s.structure >= count) return false;
    const Slot& slot = slots[s.structure];
    if (slot.ptr == nullptr) return false;
    switch (slot.kind) {
      case StructureKind::kMap:
        return s.verb == Verb::kGet || s.verb == Verb::kPut ||
               s.verb == Verb::kErase || s.verb == Verb::kContains ||
               s.verb == Verb::kRange;
      case StructureKind::kSet:
        return s.verb == Verb::kAdd || s.verb == Verb::kRemove ||
               s.verb == Verb::kContains;
      case StructureKind::kHeapPq:
      case StructureKind::kSlPq:
        return s.verb == Verb::kPush || s.verb == Verb::kPopMin ||
               s.verb == Verb::kMin;
    }
    return false;
  }

  tx::OtbListMap* map(StructureId id) const {
    return static_cast<tx::OtbListMap*>(slots[id].ptr);
  }
  tx::OtbListSet* set(StructureId id) const {
    return static_cast<tx::OtbListSet*>(slots[id].ptr);
  }
  tx::OtbHeapPQ* heap_pq(StructureId id) const {
    return static_cast<tx::OtbHeapPQ*>(slots[id].ptr);
  }
  tx::OtbSkipListPQ* sl_pq(StructureId id) const {
    return static_cast<tx::OtbSkipListPQ*>(slots[id].ptr);
  }

  /// Polymorphic view of a slot's structure (every concrete kind derives
  /// tx::OtbDs); null for an empty slot.  The cast must go through the
  /// concrete type — Slot stores the concrete pointer, not the base.
  const tx::OtbDs* ds(StructureId id) const {
    if (slots[id].ptr == nullptr) return nullptr;
    switch (slots[id].kind) {
      case StructureKind::kMap:
        return map(id);
      case StructureKind::kSet:
        return set(id);
      case StructureKind::kHeapPq:
        return heap_pq(id);
      case StructureKind::kSlPq:
        return sl_pq(id);
    }
    return nullptr;
  }

 private:
  StructureId add(StructureKind k, void* p) {
    slots[count] = Slot{k, p};
    return static_cast<StructureId>(count++);
  }
};

}  // namespace otb::service
