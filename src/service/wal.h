// Write-ahead log of committed semantic operations (docs/DURABILITY.md).
//
// Boosting's semantic write-sets are already compact logical redo logs: a
// committed batch transaction is fully described by the slot-addressed
// operations its scripts performed ({slot, verb, key, value}).  The service
// plane serializes exactly that — one length-prefixed, CRC32-protected
// record per committed batch, stamped with the transaction's commit-clock
// value (runtime.h: the stamp is drawn while semantic locks are held, so
// conflicting commits log stamps in serialization order and the per-shard
// logs merge into one totally ordered redo stream).
//
// Layout on disk (native-endian):
//   segment file  wal-<shard>-<segment>.log   (one append stream per worker)
//   record        u32 payload_len | u32 crc32(payload) | payload
//   payload       u64 seq | u32 n_ops | n_ops x { u8 slot | u8 verb |
//                                                 i64 key | i64 value }
//
// Group commit piggybacks on batch coalescing: each committed batch's
// record is appended from the transaction's commit hook (locks still held
// — see append()), and — under OTB_WAL_FSYNC=group — the worker issues one
// sync_all() per drained batch before acknowledging any of its requests,
// so a handful of disk flushes cover up to batch_max client scripts AND
// every cross-shard record they depend on.  `always` fsyncs every record;
// `off` never fsyncs (the OS flushes eventually; acknowledged != durable).
// Metrics: wal_appends / wal_bytes / wal_fsyncs counters and the
// "wal_fsync" phase histogram, domain "otb.service" (schema otb.metrics/5).
//
// A torn final record (the crash landed mid-write) is expected and repaired
// by recovery (recovery.h): the tail is truncated at the first CRC failure
// *provided nothing valid follows it* — damage with a later valid record is
// real corruption and fails closed.
#pragma once

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/crc32.h"
#include "common/platform.h"
#include "metrics/sink.h"
#include "service/request.h"

namespace otb::service {

/// Durability policy for the append path (knob OTB_WAL_FSYNC).
enum class WalFsync : std::uint8_t {
  kOff,     // append only; no fsync (acknowledged != durable)
  kGroup,   // one fsync per drained batch, before its acknowledgements
  kAlways,  // fsync every record
};

constexpr std::string_view to_string(WalFsync m) {
  switch (m) {
    case WalFsync::kOff:
      return "off";
    case WalFsync::kGroup:
      return "group";
    case WalFsync::kAlways:
      return "always";
  }
  return "?";
}

inline bool parse_wal_fsync(std::string_view s, WalFsync* out) {
  if (s == "off") *out = WalFsync::kOff;
  else if (s == "group") *out = WalFsync::kGroup;
  else if (s == "always") *out = WalFsync::kAlways;
  else return false;
  return true;
}

/// One logged semantic operation: the effective (binding-resolved) mutation
/// a script step performed.  Reads are never logged; conditional mutations
/// (erase/remove/skip-list push) are logged only when they took effect;
/// pop_min logs the popped key so replay can cross-check determinism.
struct WalOp {
  StructureId slot = 0;
  Verb verb = Verb::kGet;
  std::int64_t key = 0;
  std::int64_t value = 0;

  bool operator==(const WalOp&) const = default;
};

/// One decoded commit record: every operation of one committed batch
/// transaction, atomic on replay exactly as it was at commit.
struct WalRecord {
  std::uint64_t seq = 0;
  std::vector<WalOp> ops;

  bool operator==(const WalRecord&) const = default;
};

inline constexpr std::size_t kWalFrameBytes = 8;     // len + crc
inline constexpr std::size_t kWalOpBytes = 18;       // slot+verb+key+value
inline constexpr std::size_t kWalPayloadMin = 12;    // seq + n_ops
/// Upper bound a reader will believe: far above any real record
/// (max_steps * batch_max ops), so a garbage length field reads as damage.
inline constexpr std::size_t kWalMaxRecordBytes = 1u << 20;

namespace wal_detail {

template <typename T>
inline void put(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
inline T get(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace wal_detail

/// Append the framed record for (seq, ops) to `out`.
inline void encode_record(std::uint64_t seq, const WalOp* ops, std::size_t n,
                          std::string* out) {
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(kWalPayloadMin + n * kWalOpBytes);
  const std::size_t payload_at = out->size() + kWalFrameBytes;
  wal_detail::put(out, payload_len);
  wal_detail::put(out, std::uint32_t{0});  // crc patched below
  wal_detail::put(out, seq);
  wal_detail::put(out, static_cast<std::uint32_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    wal_detail::put(out, static_cast<std::uint8_t>(ops[i].slot));
    wal_detail::put(out, static_cast<std::uint8_t>(ops[i].verb));
    wal_detail::put(out, ops[i].key);
    wal_detail::put(out, ops[i].value);
  }
  const std::uint32_t crc = crc32(out->data() + payload_at, payload_len);
  std::memcpy(out->data() + payload_at - 4, &crc, 4);
}

/// Result of scanning one segment's byte stream.
struct WalScan {
  std::vector<WalRecord> records;
  std::size_t tail_offset = 0;  // end of the last valid record
  bool clean = false;           // stream ended exactly at a record boundary
  // Damage diagnosis (when !clean): a valid record parses somewhere after
  // the damage point => this was not a torn tail, it is mid-log corruption.
  bool valid_after_damage = false;
};

namespace wal_detail {

/// Try to decode one record at buf[off..]; returns consumed bytes (0 on
/// any damage: short frame, implausible length, CRC or structure mismatch).
inline std::size_t decode_at(std::string_view buf, std::size_t off,
                             WalRecord* rec) {
  if (buf.size() - off < kWalFrameBytes) return 0;
  const auto payload_len = get<std::uint32_t>(buf.data() + off);
  if (payload_len < kWalPayloadMin || payload_len > kWalMaxRecordBytes) return 0;
  if (buf.size() - off - kWalFrameBytes < payload_len) return 0;
  const char* payload = buf.data() + off + kWalFrameBytes;
  const auto crc = get<std::uint32_t>(buf.data() + off + 4);
  if (crc32(payload, payload_len) != crc) return 0;
  const auto n_ops = get<std::uint32_t>(payload + 8);
  if (kWalPayloadMin + n_ops * kWalOpBytes != payload_len) return 0;
  rec->seq = get<std::uint64_t>(payload);
  rec->ops.resize(n_ops);
  const char* p = payload + kWalPayloadMin;
  for (std::uint32_t i = 0; i < n_ops; ++i, p += kWalOpBytes) {
    rec->ops[i].slot = static_cast<StructureId>(get<std::uint8_t>(p));
    rec->ops[i].verb = static_cast<Verb>(get<std::uint8_t>(p + 1));
    rec->ops[i].key = get<std::int64_t>(p + 2);
    rec->ops[i].value = get<std::int64_t>(p + 10);
  }
  return kWalFrameBytes + payload_len;
}

}  // namespace wal_detail

/// Scan a whole segment buffer into records.  On damage, probes every later
/// offset for a valid record to distinguish a torn tail (nothing valid
/// follows — recoverable by truncation) from mid-log corruption (valid data
/// follows the damage — fail closed).
inline WalScan scan_wal_buffer(std::string_view buf) {
  WalScan out;
  std::size_t off = 0;
  WalRecord rec;
  while (off < buf.size()) {
    const std::size_t used = wal_detail::decode_at(buf, off, &rec);
    if (used == 0) {
      for (std::size_t probe = off + 1; probe < buf.size(); ++probe) {
        if (wal_detail::decode_at(buf, probe, &rec) != 0) {
          out.valid_after_damage = true;
          break;
        }
      }
      out.tail_offset = off;
      return out;
    }
    out.records.push_back(rec);
    off += used;
  }
  out.tail_offset = off;
  out.clean = true;
  return out;
}

/// Options for the append side.
struct WalOptions {
  std::string dir;
  WalFsync fsync = WalFsync::kGroup;
  unsigned shards = 1;
  metrics::MetricsSink* sink = nullptr;  // wal_* counters; may be null
};

inline std::string wal_segment_name(unsigned shard, std::uint64_t segment) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "wal-%04u-%08llu.log", shard,
                static_cast<unsigned long long>(segment));
  return buf;
}

/// Parse "wal-<shard>-<segment>.log"; false for other directory entries.
inline bool parse_wal_segment_name(std::string_view name, unsigned* shard,
                                   std::uint64_t* segment) {
  unsigned s = 0;
  unsigned long long g = 0;
  char tail = 0;
  if (std::sscanf(std::string(name).c_str(), "wal-%u-%llu.lo%c", &s, &g,
                  &tail) != 3 ||
      tail != 'g') {
    return false;
  }
  *shard = s;
  *segment = g;
  return true;
}

/// Acquire the WAL directory's single-owner lock: an exclusive,
/// non-blocking flock(2) on `<dir>/lock`.  Returns the held fd (the lock
/// lives as long as the fd stays open), or -1 with *err set — including
/// when another live process holds it.  The kernel drops the lock when the
/// holder's fd closes or the holder dies, SIGKILL included, so a crashed
/// service never wedges its own recovery.  Both the serving path
/// (Wal::open_for_append) and recovery (recover_into) take this lock:
/// recovering a directory a live service is still appending to would read
/// segments mid-write and mis-diagnose the moving state as corruption.
inline int lock_wal_dir(const std::string& dir, std::string* err) {
  const std::string path = dir + "/lock";
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0666);
  if (fd < 0) {
    if (err != nullptr) *err = "open " + path + ": " + std::strerror(errno);
    return -1;
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    if (err != nullptr) {
      *err = errno == EWOULDBLOCK
                 ? "wal directory " + dir + " is locked by a live process"
                 : "flock " + path + ": " + std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

/// The per-shard append streams plus the shared commit clock.  One worker
/// thread appends to each shard (no locking on the append path); rotate_all
/// runs only while workers are paused (the checkpoint quiescent point).
///
/// I/O failure on the append path aborts the process: the durability
/// contract (acknowledged => durable) cannot be honoured past a failed
/// write, and carrying on would silently ack non-durable commits.
class Wal {
 public:
  explicit Wal(WalOptions opt) : opt_(std::move(opt)) {
    if (opt_.shards == 0) opt_.shards = 1;
    shards_.reserve(opt_.shards);
    for (unsigned s = 0; s < opt_.shards; ++s) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  ~Wal() { close_all(); }

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  const WalOptions& options() const { return opt_; }

  /// The commit clock batch transactions stamp from
  /// (Transaction::set_commit_clock).  Recovery seeds it with the last
  /// replayed sequence so new commits continue the total order.
  std::atomic<std::uint64_t>& clock() { return clock_; }

  /// Anything on disk worth recovering? (manifest or non-empty segment)
  static bool dir_has_state(const std::string& dir) {
    struct stat st{};
    if (::stat((dir + "/last_checkpoint").c_str(), &st) == 0) return true;
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return false;
    bool found = false;
    while (dirent* e = ::readdir(d)) {
      unsigned shard;
      std::uint64_t seg;
      if (parse_wal_segment_name(e->d_name, &shard, &seg) &&
          ::stat((dir + "/" + e->d_name).c_str(), &st) == 0 && st.st_size > 0) {
        found = true;
        break;
      }
    }
    ::closedir(d);
    return found;
  }

  /// Create the directory and open every shard's newest segment for append
  /// (creating segment 0 where none exists).  Run recovery FIRST: it
  /// truncates a torn tail so this append point is a valid record boundary.
  bool open_for_append(std::string* err) {
    if (::mkdir(opt_.dir.c_str(), 0777) != 0 && errno != EEXIST) {
      if (err != nullptr) *err = "mkdir " + opt_.dir + ": " + std::strerror(errno);
      return false;
    }
    if (lock_fd_ < 0) {
      lock_fd_ = lock_wal_dir(opt_.dir, err);
      if (lock_fd_ < 0) return false;
    }
    std::vector<std::uint64_t> newest(opt_.shards, 0);
    if (DIR* d = ::opendir(opt_.dir.c_str())) {
      while (dirent* e = ::readdir(d)) {
        unsigned shard;
        std::uint64_t seg;
        if (parse_wal_segment_name(e->d_name, &shard, &seg) &&
            shard < opt_.shards && seg > newest[shard]) {
          newest[shard] = seg;
        }
      }
      ::closedir(d);
    }
    for (unsigned s = 0; s < opt_.shards; ++s) {
      Shard& sh = *shards_[s];
      sh.segment = newest[s];
      const std::string path = opt_.dir + "/" + wal_segment_name(s, newest[s]);
      sh.fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0666);
      if (sh.fd < 0) {
        if (err != nullptr) *err = "open " + path + ": " + std::strerror(errno);
        return false;
      }
    }
    sync_dir();
    return true;
  }

  bool is_open() const { return !shards_.empty() && shards_[0]->fd >= 0; }

  /// Append one commit record to `shard`.  Called from the commit hook,
  /// while the committing transaction still holds its semantic locks: any
  /// transaction that can observe this commit's writes starts only after
  /// this append has hit the kernel, so a sync_all() taken before that
  /// dependent's acknowledgement always covers this record.  Under kAlways
  /// the record is fsynced before returning.
  void append(unsigned shard, std::uint64_t seq, const WalOp* ops,
              std::size_t n) {
    Shard& sh = *shards_[shard];
    sh.scratch.clear();
    encode_record(seq, ops, n, &sh.scratch);
    write_fully(sh.fd, sh.scratch.data(), sh.scratch.size());
    const std::uint64_t mark =
        sh.appended.fetch_add(1, std::memory_order_release) + 1;
    if (opt_.sink != nullptr) {
      opt_.sink->add(metrics::CounterId::kWalAppends);
      opt_.sink->add(metrics::CounterId::kWalBytes, sh.scratch.size());
    }
    if (opt_.fsync == WalFsync::kAlways) fsync_shard(sh, mark);
  }

  /// Group-commit flush: fsync EVERY shard with unsynced appends, not just
  /// the caller's own.  Round-robin admission puts same-key traffic on
  /// different shards, so a batch's commits routinely depend on records in
  /// other shards' logs; because those records were appended before the
  /// dependency's locks released (see append()), flushing all dirty logs
  /// before acknowledging makes "acked => every record it depends on is
  /// durable" hold across shards.  Concurrent appends that raced in after
  /// our counter read stay unsynced — their own batch's sync covers them.
  void sync_all() {
    if (opt_.fsync != WalFsync::kGroup) return;
    for (auto& shp : shards_) {
      Shard& sh = *shp;
      const std::uint64_t mark = sh.appended.load(std::memory_order_acquire);
      if (mark != sh.synced.load(std::memory_order_relaxed)) {
        fsync_shard(sh, mark);
      }
    }
  }

  /// Rotate every shard to a fresh segment (checkpoint quiescent point:
  /// no worker is appending).  The outgoing segments are fsynced before the
  /// rotation is visible, so every pre-rotation record is durable-complete
  /// — recovery treats damage in a non-final segment as corruption.
  bool rotate_all(std::string* err) {
    for (unsigned s = 0; s < opt_.shards; ++s) {
      Shard& sh = *shards_[s];
      if (sh.fd >= 0) {
        const std::uint64_t mark = sh.appended.load(std::memory_order_acquire);
        if (mark != sh.synced.load(std::memory_order_relaxed)) {
          fsync_shard(sh, mark);
        }
        ::close(sh.fd);
      }
      sh.segment += 1;
      const std::string path =
          opt_.dir + "/" + wal_segment_name(s, sh.segment);
      sh.fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0666);
      if (sh.fd < 0) {
        if (err != nullptr) *err = "open " + path + ": " + std::strerror(errno);
        return false;
      }
    }
    sync_dir();
    return true;
  }

  std::uint64_t current_segment(unsigned shard) const {
    return shards_[shard]->segment;
  }

  void close_all() {
    for (auto& shp : shards_) {
      Shard& sh = *shp;
      if (sh.fd >= 0) {
        const std::uint64_t mark = sh.appended.load(std::memory_order_acquire);
        if (mark != sh.synced.load(std::memory_order_relaxed) &&
            opt_.fsync != WalFsync::kOff) {
          fsync_shard(sh, mark);
        }
        ::close(sh.fd);
        sh.fd = -1;
      }
    }
    if (lock_fd_ >= 0) {
      ::close(lock_fd_);  // releases the directory's single-owner flock
      lock_fd_ = -1;
    }
  }

 private:
  struct Shard {
    int fd = -1;
    std::uint64_t segment = 0;
    // Lifetime append / fsync-covered counters (monotone across segment
    // rotations).  Written by the shard's owning worker (appended) and by
    // whichever worker runs a group sync (synced); `appended != synced`
    // is the cross-thread dirty test.
    std::atomic<std::uint64_t> appended{0};
    std::atomic<std::uint64_t> synced{0};
    std::string scratch;
  };

  /// fsync `sh` and raise its synced mark to at least `upto` (CAS loop: a
  /// concurrent sync may already have raised it further).  Safe to run
  /// against a file another thread is appending to — it just persists a
  /// prefix that includes everything up to `upto`.
  void fsync_shard(Shard& sh, std::uint64_t upto) {
    const std::uint64_t t0 = now_ns();
    if (::fsync(sh.fd) != 0) die("fsync");
    std::uint64_t seen = sh.synced.load(std::memory_order_relaxed);
    while (seen < upto && !sh.synced.compare_exchange_weak(
                              seen, upto, std::memory_order_relaxed)) {
    }
    if (opt_.sink != nullptr) {
      opt_.sink->add(metrics::CounterId::kWalFsyncs);
      opt_.sink->record_phase(metrics::Phase::kWalFsync, now_ns() - t0);
    }
  }

  void write_fully(int fd, const char* data, std::size_t len) {
    while (len > 0) {
      const ssize_t n = ::write(fd, data, len);
      if (n < 0) {
        if (errno == EINTR) continue;
        die("write");
      }
      data += n;
      len -= static_cast<std::size_t>(n);
    }
  }

  /// Make directory entries (new segments) durable.
  void sync_dir() {
    const int fd = ::open(opt_.dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
      ::fsync(fd);
      ::close(fd);
    }
  }

  [[noreturn]] void die(const char* what) {
    std::fprintf(stderr, "otb wal: %s failed in %s: %s\n", what,
                 opt_.dir.c_str(), std::strerror(errno));
    std::abort();
  }

  WalOptions opt_;
  std::vector<std::unique_ptr<Shard>> shards_;  // stable addresses (atomics)
  std::atomic<std::uint64_t> clock_{0};
  int lock_fd_ = -1;  // held single-owner flock on <dir>/lock
};

}  // namespace otb::service
