// The in-process transactional service plane (DESIGN.md "Transactional
// service plane", docs/SERVICE.md for the request schema).
//
// Clients submit typed requests (request.h) — each an atomic *script* of
// one or more steps over the service's registered structures; sharded
// bounded MPSC rings (queue.h) buffer them; worker threads drain their own
// shard and coalesce up to `batch_max` requests into ONE boosted
// transaction — many fine-grained client scripts composed into fewer,
// larger atomic steps, which is exactly the regime where the
// commit-sequence fast path and traversal hints pay (per-transaction costs
// amortise over ops/tx).  A script's steps always commit or roll back
// together, across as many heterogeneous structures as they touch: the
// boosted transaction host acquires semantic locks in a deterministic
// global order (structure id, then key — DESIGN.md "Cross-structure lock
// order"), so composition adds no new deadlock risk.
//
// Robustness:
//   * admission control — a submit against a queue at its high-water mark
//     completes immediately as kOverloaded; admitted requests therefore see
//     bounded queueing delay no matter the offered load.  Malformed scripts
//     (unknown slot, incompatible verb, bad binding, too many steps)
//     complete as kFailed at submit and never consume a queue slot;
//   * per-request deadlines — a request whose deadline passed while queued
//     completes as kExpired before it wastes a transaction slot;
//   * transaction fusion (src/service/fusion.h, DESIGN.md "Transaction
//     fusion") — the FIRST response to a spent attempt budget: the worker
//     adopts a conflicting peer's donated batch (or donates its own) so the
//     mutually-conflicting scripts commit as ONE merged transaction instead
//     of fighting; a lock-free union-find arbitrates which worker absorbs
//     the conflict set.  `OTB_FUSION=off` disables it;
//   * split-retry — the LAST response: a batch that cannot commit within
//     `batch_attempts` transaction attempts (contention, injected aborts)
//     and that fusion could not place is split in half and each half
//     retried under the capped-jittered Backoff; singletons retry until
//     they commit or expire, so persistent conflicts degrade throughput,
//     never results;
//   * guard handling — a script whose `required`/`expect` guard fails
//     aborts its transaction.  Inside a coalesced batch the failure may
//     have been caused by a batchmate's (rolled back) overlay writes, so
//     the victim is deferred and re-run solo for a clean verdict; only a
//     SOLO guard failure completes the request (kOk with per-step results
//     showing where the script stopped — semantically a no-op that
//     linearises at the failed guard's read);
//   * stop()/drain — stop() (and SIGTERM via net.h) closes admission, waits
//     out in-flight submits, then workers drain every queued request to a
//     terminal status before exiting: no lost completions;
//   * durability (opt-in, docs/DURABILITY.md) — with `wal_dir` set, every
//     committed batch appends its semantic write-set to a per-shard
//     write-ahead log (wal.h) stamped by a global commit clock; under the
//     group fsync policy a batch's requests are acknowledged only after
//     the one fsync covering the whole drained batch, so acknowledged =>
//     durable.  A checkpoint thread periodically pauses the workers at a
//     batch boundary, snapshots every registered structure, rotates the
//     log, and compacts (recovery.h); recover() rebuilds state from the
//     last checkpoint plus the replayed log tail before start().
//
//   * read-only fast path (docs/SERVICE.md "Snapshot reads") — with
//     OTB_MV_VERSIONS > 0, a script made only of read verbs over
//     snapshot-capable structures is executed INLINE at submit as an
//     abort-free multi-version snapshot read (tx::snapshot_read): no queue
//     slot, no batch, no validation, no retry.  A version-chain miss falls
//     back to a validated read-only transaction; either way the request
//     completes kOk from the submitting thread.
//
// Metrics (domain "otb.service", schema otb.metrics/8): svc_* admission /
// completion counters (including svc_scripts / svc_script_steps /
// svc_guard_aborts for the multi-op surface, svc_read_only for the
// snapshot route, and svc_split_retries / svc_fused / fusion_unions /
// fusion_fallbacks for the contention manager), wal_* durability counters,
// queue-depth + batch-size + mv_chain_len + fused_set_size log2 series,
// and the "service" / "wal_fsync" phase histograms.  The batch transactions themselves keep reporting through
// "otb.tx" as always.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/platform.h"
#include "common/spinlock.h"
#include "common/tx_abort.h"
#include "metrics/registry.h"
#include "metrics/sink.h"
#include "otb/runtime.h"
#include "service/fusion.h"
#include "service/queue.h"
#include "service/recovery.h"
#include "service/request.h"
#include "service/targets.h"
#include "service/wal.h"

namespace otb::service {

namespace detail {
inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}
}  // namespace detail

// Targets (the slot registry) lives in targets.h so the durability layer
// can address slots without pulling in the whole service plane.

struct ServiceConfig {
  unsigned workers = 2;               // drain threads (= queue shards)
  unsigned batch_max = 16;            // requests coalesced per transaction
  std::size_t queue_capacity = 1024;  // per shard, rounded up to 2^k
  std::size_t high_water = 0;         // per shard; 0 = queue_capacity
  unsigned batch_attempts = 4;        // tx attempts before a batch splits
  std::size_t max_steps = 16;         // script length admission cap
  std::uint64_t default_deadline_ns = 0;  // applied when a request has none

  /// Durability (docs/DURABILITY.md).  A non-empty wal_dir enables the
  /// write-ahead log: committed batches append commit records there, and
  /// recover() replays them after a crash.  wal_checkpoint_ms > 0 starts
  /// the background checkpoint thread (snapshot + log compaction).
  std::string wal_dir;
  WalFsync wal_fsync = WalFsync::kGroup;
  unsigned wal_checkpoint_ms = 0;  // 0 = no checkpoint thread

  /// Test hook, run INSIDE every batch transaction just before commit.
  /// Throwing TxAbort (the same explicit-abort channel the abort-taxonomy
  /// injection tests use) fails the attempt; spending the whole attempt
  /// budget forces a split-retry.  Never set in production.
  std::function<void(std::size_t batch_size)> batch_fault_hook;

  /// Metrics sink; null = Registry::global().sink("otb.service").
  metrics::MetricsSink* metrics = nullptr;

  /// Defaults overridable from the environment (docs/KNOBS.md):
  /// OTB_SERVICE_WORKERS, OTB_SERVICE_BATCH_MAX, OTB_SERVICE_QUEUE_CAP,
  /// OTB_SERVICE_HIGH_WATER, OTB_SERVICE_BATCH_ATTEMPTS,
  /// OTB_SVC_MAX_STEPS, OTB_SERVICE_DEADLINE_MS, OTB_WAL_DIR,
  /// OTB_WAL_FSYNC, OTB_WAL_CKPT_MS.
  static ServiceConfig from_env() {
    ServiceConfig cfg;
    cfg.workers = static_cast<unsigned>(
        detail::env_u64("OTB_SERVICE_WORKERS", cfg.workers));
    cfg.batch_max = static_cast<unsigned>(
        detail::env_u64("OTB_SERVICE_BATCH_MAX", cfg.batch_max));
    cfg.queue_capacity = static_cast<std::size_t>(
        detail::env_u64("OTB_SERVICE_QUEUE_CAP", cfg.queue_capacity));
    cfg.high_water = static_cast<std::size_t>(
        detail::env_u64("OTB_SERVICE_HIGH_WATER", cfg.high_water));
    cfg.batch_attempts = static_cast<unsigned>(
        detail::env_u64("OTB_SERVICE_BATCH_ATTEMPTS", cfg.batch_attempts));
    cfg.max_steps = static_cast<std::size_t>(
        detail::env_u64("OTB_SVC_MAX_STEPS", cfg.max_steps));
    cfg.default_deadline_ns =
        detail::env_u64("OTB_SERVICE_DEADLINE_MS", 0) * 1'000'000ull;
    if (const char* d = std::getenv("OTB_WAL_DIR")) cfg.wal_dir = d;
    if (const char* m = std::getenv("OTB_WAL_FSYNC")) {
      if (!parse_wal_fsync(m, &cfg.wal_fsync)) {
        std::fprintf(stderr,
                     "otb service: OTB_WAL_FSYNC=%s unknown (always/group/off)"
                     ", keeping %s\n",
                     m, std::string(to_string(cfg.wal_fsync)).c_str());
      }
    }
    cfg.wal_checkpoint_ms = static_cast<unsigned>(
        detail::env_u64("OTB_WAL_CKPT_MS", cfg.wal_checkpoint_ms));
    return cfg;
  }
};

class Service {
 public:
  explicit Service(Targets targets, ServiceConfig cfg = ServiceConfig{})
      : targets_(targets),
        cfg_(sanitise(std::move(cfg))),
        queue_(cfg_.workers, cfg_.queue_capacity, cfg_.high_water),
        sink_(cfg_.metrics != nullptr
                  ? cfg_.metrics
                  : &metrics::Registry::global().sink("otb.service")) {
    if (!cfg_.wal_dir.empty()) {
      wal_ = std::make_unique<Wal>(
          WalOptions{cfg_.wal_dir, cfg_.wal_fsync, cfg_.workers, sink_});
    }
    // Fusion needs a peer to fuse with; a single-worker plane keeps the
    // pre-fusion loop (the OTB_FUSION knob is re-read per batch, so the
    // plane exists whenever it could ever be used).
    if (cfg_.workers > 1) {
      fusion_ = std::make_unique<FusionPlane>(cfg_.workers, sink_);
    }
  }

  ~Service() { stop(); }

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Rebuild state from the WAL directory: the last checkpoint (or, when
  /// none exists, the caller's `seed_baseline` closure — the SAME
  /// deterministic pre-seeding the crashed run performed before start())
  /// plus the replayed log tail.  Must run before start(), on the empty
  /// registered structures.  On success the commit clock resumes from the
  /// last replayed stamp, so the restarted service appends a continuation
  /// of the same totally ordered history.
  RecoveryReport recover(const std::function<void()>& seed_baseline = {}) {
    RecoveryReport r;
    if (wal_ == nullptr) {
      if (seed_baseline) seed_baseline();
      return r;  // kNoState: durability is off
    }
    if (started_.load(std::memory_order_acquire)) {
      r.status = RecoveryStatus::kIoError;
      r.detail = "recover() must run before start()";
      return r;
    }
    r = recover_into(cfg_.wal_dir, targets_, seed_baseline);
    if (r.ok()) {
      wal_->clock().store(r.last_seq, std::memory_order_release);
      recovered_ = true;
    }
    return r;
  }

  /// Launch the worker threads.  Separate from the constructor so tests can
  /// pre-load queues (admission and deadline behaviour without racing a
  /// drain) before any worker runs.
  void start() {
    if (started_.exchange(true)) return;
    if (wal_ != nullptr && !wal_->is_open()) {
      if (!recovered_ && Wal::dir_has_state(cfg_.wal_dir)) {
        // Appending a fresh clock's stamps over an unrecovered log would
        // corrupt it (duplicate stamps); this is a programming error, not
        // a runtime condition, so refuse loudly.
        std::fprintf(stderr,
                     "otb service: WAL dir %s holds state; call recover() "
                     "before start()\n",
                     cfg_.wal_dir.c_str());
        std::abort();
      }
      std::string err;
      if (!wal_->open_for_append(&err)) {
        std::fprintf(stderr, "otb service: cannot open WAL: %s\n",
                     err.c_str());
        std::abort();
      }
    }
    running_.store(true, std::memory_order_release);
    workers_.reserve(cfg_.workers);
    for (unsigned w = 0; w < cfg_.workers; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
    if (wal_ != nullptr && cfg_.wal_checkpoint_ms != 0) {
      ckpt_stop_.store(false, std::memory_order_release);
      ckpt_thread_ = std::thread([this] { checkpoint_loop(); });
    }
  }

  /// Close admission, drain every queued request to a terminal status, and
  /// join the workers.  Idempotent; also invoked by the destructor and the
  /// net adapter's SIGTERM path.
  void stop() {
    accepting_.store(false, std::memory_order_seq_cst);
    // Dekker with submit(): once no submit is mid-push, every future submit
    // observes accepting_ == false and rejects, so the drains below see the
    // final queue contents.
    while (submits_in_flight_.load(std::memory_order_seq_cst) != 0) {
      cpu_relax();
    }
    if (ckpt_thread_.joinable()) {
      ckpt_stop_.store(true, std::memory_order_release);
      ckpt_thread_.join();
    }
    if (started_.load(std::memory_order_acquire)) {
      running_.store(false, std::memory_order_release);
      queue_.wake_all();
      for (auto& t : workers_) {
        if (t.joinable()) t.join();
      }
      workers_.clear();
      started_.store(false, std::memory_order_release);
    } else {
      // stop() before start(): no workers exist, so the stopping thread
      // drains (admitted requests still complete, running on this thread).
      for (unsigned s = 0; s < queue_.shard_count(); ++s) drain_shard(s);
    }
    // Flush and close the log, releasing the directory's single-owner
    // lock: a stopped service no longer owns the directory, so recovery
    // (or a successor process) may open it.  start() re-opens and
    // re-acquires.
    if (wal_ != nullptr) wal_->close_all();
  }

  bool accepting() const {
    return accepting_.load(std::memory_order_acquire);
  }

  /// Submit one request.  Always returns a valid future; admission failures
  /// complete it before returning — kFailed for a malformed script (the
  /// structured replacement for the old silent per-op failure), kOverloaded
  /// for a queue at high water or a stopped service.  Safe from any number
  /// of producer threads.
  ResponseFuture submit(Request req) {
    Pending* p = new Pending;
    if (req.deadline_ns == 0 && cfg_.default_deadline_ns != 0) {
      req.deadline_ns = now_ns() + cfg_.default_deadline_ns;
    }
    const std::size_t n_steps = req.steps.size();
    p->req = std::move(req);
    p->enqueue_ns = now_ns();
    ResponseFuture fut(p);
    if (!validate_script(p->req)) {
      sink_->add(metrics::CounterId::kSvcFailed);
      complete(p, SvcStatus::kFailed);
      return fut;
    }
    if (tx::mv_versions() != 0 && is_read_only_script(p->req) &&
        (p->req.deadline_ns == 0 || p->req.deadline_ns >= now_ns())) {
      // Abort-free snapshot route: the script runs inline on the submitting
      // thread against a multi-version snapshot, never consuming a queue
      // slot or a batch transaction.  A live deadline cannot lapse here
      // (execution happens before submit() returns); one already lapsed at
      // submit falls through to the queue path below, whose worker expires
      // it under the normal ledger — so svc_expired keeps balancing against
      // svc_enqueued, and this route is accounted purely by
      // svc_read_only == mv_snapshot_reads + mv_version_misses.
      //
      // Same Dekker handshake as the queue path: the in-flight bracket
      // covers the whole inline execution, so stop() cannot close the WAL
      // or tear down members while submit_read_only still runs here.
      submits_in_flight_.fetch_add(1, std::memory_order_seq_cst);
      if (!accepting_.load(std::memory_order_seq_cst)) {
        submits_in_flight_.fetch_sub(1, std::memory_order_seq_cst);
        sink_->add(metrics::CounterId::kSvcRejected);
        complete(p, SvcStatus::kOverloaded);
        return fut;
      }
      submit_read_only(p);
      submits_in_flight_.fetch_sub(1, std::memory_order_seq_cst);
      return fut;
    }
    submits_in_flight_.fetch_add(1, std::memory_order_seq_cst);
    const bool admitted =
        accepting_.load(std::memory_order_seq_cst) && queue_.try_push(p);
    submits_in_flight_.fetch_sub(1, std::memory_order_seq_cst);
    if (!admitted) {
      sink_->add(metrics::CounterId::kSvcRejected);
      complete(p, SvcStatus::kOverloaded);
      return fut;
    }
    sink_->add(metrics::CounterId::kSvcEnqueued);
    sink_->add(metrics::CounterId::kSvcScriptSteps, n_steps);
    if (n_steps > 1) sink_->add(metrics::CounterId::kSvcScripts);
    return fut;
  }

  /// Take a checkpoint right now (also what the background thread does):
  /// pause the workers at a batch boundary, snapshot every registered
  /// structure + rotate the log, resume, then durably write the snapshot,
  /// repoint the manifest, and prune obsolete segments.  False when
  /// durability is off or an I/O step failed (the previous checkpoint
  /// stays in force either way).
  bool checkpoint_now() {
    Wal* wal = active_wal();
    if (wal == nullptr) return false;
    std::vector<CheckpointSlot> slots;
    std::uint64_t seq = 0;
    std::vector<std::uint64_t> live(cfg_.workers, 0);
    {
      std::unique_lock<std::shared_mutex> pause(pause_);
      // Quiescent: every worker is between batches, so every commit with
      // stamp <= the clock is fully applied and no commit is in flight.
      seq = wal->clock().load(std::memory_order_acquire);
      capture_slots(&slots);
      std::string err;
      if (!wal->rotate_all(&err)) {
        std::fprintf(stderr, "otb service: checkpoint rotate failed: %s\n",
                     err.c_str());
        return false;
      }
      for (unsigned s = 0; s < cfg_.workers; ++s) {
        live[s] = wal->current_segment(s);
      }
    }
    // Off the critical path: workers are running again.
    std::string err;
    if (!write_checkpoint(cfg_.wal_dir, seq, slots, &err)) {
      std::fprintf(stderr, "otb service: checkpoint write failed: %s\n",
                   err.c_str());
      return false;
    }
    prune_obsolete(cfg_.wal_dir, live, checkpoint_file_name(seq));
    return true;
  }

  const ServiceConfig& config() const { return cfg_; }
  const Targets& targets() const { return targets_; }
  metrics::MetricsSink& metrics_sink() { return *sink_; }
  std::size_t queue_size() const { return queue_.total_size(); }
  /// The write-ahead log (null when durability is off); tests read the
  /// commit clock and segment positions through it.
  Wal* wal() { return wal_.get(); }

 private:
  /// Thrown by apply() when a script's guard fails: the enclosing batch
  /// transaction must roll back (atomically nothing happened).  Not a
  /// TxAbort — guard failure is a semantic outcome, not contention.
  struct ScriptAbort {
    Pending* victim;
  };

  enum class BatchOutcome : std::uint8_t {
    kCommitted,    // whole batch committed, complete everyone kOk
    kBudgetSpent,  // attempt budget exhausted on aborts — caller splits
    kGuardAbort,   // one script's guard failed — caller defers the victim
  };

  static ServiceConfig sanitise(ServiceConfig cfg) {
    if (cfg.workers == 0) cfg.workers = 1;
    if (cfg.batch_max == 0) cfg.batch_max = 1;
    if (cfg.queue_capacity < 2) cfg.queue_capacity = 2;
    if (cfg.batch_attempts == 0) cfg.batch_attempts = 1;
    if (cfg.max_steps == 0) cfg.max_steps = 1;
    if (cfg.max_steps > kMaxStepsLimit) cfg.max_steps = kMaxStepsLimit;
    return cfg;
  }

  /// Admission-time script validation: structural problems complete as
  /// kFailed before the request consumes a queue slot, so the worker path
  /// never sees a malformed step — there is no per-op "failed" state any
  /// more (SvcStatus is the single source of truth).
  bool validate_script(const Request& req) const {
    if (req.steps.empty() || req.steps.size() > cfg_.max_steps) return false;
    for (std::size_t i = 0; i < req.steps.size(); ++i) {
      const Step& s = req.steps[i];
      if (!targets_.valid_step(s)) return false;
      // Bindings may only reference an earlier step of the same script.
      if (s.key_from < -1 ||
          (s.key_from >= 0 &&
           static_cast<std::size_t>(s.key_from) >= i)) {
        return false;
      }
      if (s.value_from < -1 ||
          (s.value_from >= 0 &&
           static_cast<std::size_t>(s.value_from) >= i)) {
        return false;
      }
    }
    return true;
  }

  /// A script the snapshot route may serve: every step is a pure read verb
  /// and every target structure offers the `*_at` snapshot entry points
  /// (supports_snapshot_reads() — the eager heap PQ does not: its effects
  /// bypass the OTB deferral discipline, so it grows no version chains).
  bool is_read_only_script(const Request& req) const {
    for (const Step& s : req.steps) {
      const tx::OtbDs* ds = targets_.ds(s.structure);
      if (ds == nullptr || !ds->supports_snapshot_reads()) return false;
      switch (s.verb) {
        case Verb::kGet:
        case Verb::kContains:
        case Verb::kRange:
        case Verb::kMin:
          break;
        default:
          return false;
      }
    }
    return true;
  }

  /// Inline execution of a read-only script (submit-time, caller thread).
  /// First choice is the abort-free snapshot path; a version miss (chain
  /// evicted past the stamp, or the knob raced to 0) falls back to a
  /// validated read-only transaction, which a read-only script cannot
  /// fail semantically — only its guards can trip, and a guard verdict
  /// observed solo is definitive (same rule as the batch path's solo
  /// re-run).  Completes the request kOk either way.
  void submit_read_only(Pending* p) {
    bool guard_failed = false;
    const bool snapped = tx::snapshot_read(*sink_, [&](tx::SnapshotTx& snap) {
      guard_failed = apply_snapshot(snap, p);
    });
    if (!snapped) {
      guard_failed = false;
      try {
        tx::atomically([&](tx::Transaction& t) { apply(t, p, nullptr); });
      } catch (const ScriptAbort&) {
        guard_failed = true;  // results already filled by apply()
      }
    }
    if (guard_failed) sink_->add(metrics::CounterId::kSvcGuardAborts);
    sink_->add(metrics::CounterId::kSvcReadOnly);
    // Group-fsync: the values read may depend on commit records another
    // shard appended but has not yet synced; acknowledged => durable also
    // covers what acknowledged *reads* observed.
    Wal* wal = active_wal();
    if (wal != nullptr && wal->options().fsync == WalFsync::kGroup) {
      wal->sync_all();
    }
    sink_->record_phase(metrics::Phase::kService, now_ns() - p->enqueue_ns);
    complete(p, SvcStatus::kOk);
  }

  /// apply()'s read-only twin over a snapshot: same step loop, bindings,
  /// and guard semantics, but every read resolves as of the snapshot stamp
  /// through the structures' `*_at` entry points.  Returns true when a
  /// guard failed (remaining results filled as not-run); never throws
  /// except SnapshotMiss/SnapshotRetry from the reads themselves, which
  /// tx::snapshot_read absorbs — so it may run several times and rebuilds
  /// the result state from scratch each call.
  bool apply_snapshot(tx::SnapshotTx& snap, Pending* p) const {
    const Request& r = p->req;
    p->results.clear();
    p->results.reserve(r.steps.size());
    p->range_out.clear();
    p->ok = true;
    p->value = 0;
    for (std::size_t i = 0; i < r.steps.size(); ++i) {
      const Step& s = r.steps[i];
      const std::int64_t key =
          s.key_from >= 0 ? p->results[s.key_from].value : s.key;
      const std::int64_t value =
          s.value_from >= 0 ? p->results[s.value_from].value : s.value;
      StepResult res;
      res.ran = true;
      switch (targets_.slots[s.structure].kind) {
        case StructureKind::kMap: {
          const tx::OtbListMap* m = targets_.map(s.structure);
          switch (s.verb) {
            case Verb::kGet:
              res.ok = m->get_at(snap, key, &res.value);
              break;
            case Verb::kContains:
              res.ok = m->contains_at(snap, key);
              res.value = key;
              break;
            case Verb::kRange:
              res.value = static_cast<std::int64_t>(
                  m->range_at(snap, key, value, &p->range_out));
              res.ok = true;
              break;
            default:
              break;  // unreachable: is_read_only_script screened verbs
          }
          break;
        }
        case StructureKind::kSet:
          // kContains is the set's only read verb.
          res.ok = targets_.set(s.structure)->contains_at(snap, key);
          res.value = key;
          break;
        case StructureKind::kSlPq:
          // kMin is the skip-list PQ's only read verb.
          res.ok = targets_.sl_pq(s.structure)->min_at(snap, &res.value);
          break;
        case StructureKind::kHeapPq:
          break;  // unreachable: is_read_only_script rejected heap slots
      }
      p->results.push_back(res);
      p->value = res.value;
      if (!res.ok) p->ok = false;
      const bool guard_failed =
          (s.required && !res.ok) ||
          (s.has_expect && (!res.ok || res.value != s.expect));
      if (guard_failed) {
        for (std::size_t j = i + 1; j < r.steps.size(); ++j) {
          p->results.push_back(StepResult{});  // ran = false
        }
        p->ok = false;
        return true;
      }
    }
    return false;
  }

  void worker_loop(unsigned shard) {
    char name[16];
    std::snprintf(name, sizeof(name), "svc/w%u", shard);
    set_this_thread_name(name);
    std::vector<Pending*> batch;
    batch.reserve(cfg_.batch_max);
    for (;;) {
      const std::uint32_t doorbell = queue_.doorbell(shard);
      // Depth sampled BEFORE popping: the backlog a newly arriving request
      // would queue behind.
      const std::size_t depth = queue_.shard_size(shard);
      batch.clear();
      for (unsigned i = 0; i < cfg_.batch_max; ++i) {
        Pending* p = queue_.try_pop(shard);
        if (p == nullptr) break;
        batch.push_back(p);
      }
      if (batch.empty()) {
        if (!running_.load(std::memory_order_acquire)) break;
        queue_.wait(shard, doorbell);
        continue;
      }
      sink_->record_queue_depth(depth);
      execute_batch(shard, batch);
    }
    // Drain sweep: stop() guarantees no push starts after running_ clears,
    // but pushes admitted before it may still sit in the ring.
    drain_shard(shard);
  }

  void drain_shard(unsigned shard) {
    std::vector<Pending*> batch;
    batch.reserve(cfg_.batch_max);
    for (;;) {
      batch.clear();
      for (unsigned i = 0; i < cfg_.batch_max; ++i) {
        Pending* p = queue_.try_pop(shard);
        if (p == nullptr) break;
        batch.push_back(p);
      }
      if (batch.empty()) return;
      execute_batch(shard, batch);
    }
  }

  /// Execute one batch: expire stale requests, run the rest in a single
  /// boosted transaction, split on repeated failure.  With durability on,
  /// the whole cycle runs under the checkpoint pause lock (shared side),
  /// and — under the group fsync policy — kOk acknowledgements are
  /// deferred to the single fsync at the end, so one disk flush covers
  /// every record the drained batch produced (commits, splits, and solo
  /// guard-abort re-runs included): acknowledged => durable.
  void execute_batch(unsigned shard, std::vector<Pending*>& batch) {
    std::shared_lock<std::shared_mutex> pause(pause_, std::defer_lock);
    if (wal_ != nullptr) pause.lock();
    // Per-thread scratch: one batch is in flight per worker, and the
    // split recursion never re-enters execute_batch.
    static thread_local std::vector<Pending*> live;
    static thread_local std::vector<Pending*> acks;
    live.clear();
    acks.clear();
    // Descriptors adopted from fused donors, seeding this batch's
    // transactions (try_batch_tx).  Not thread_local: it holds owning
    // pointers keyed by structure addresses and must die with the batch.
    tx::DescriptorPool fused_pool;
    const bool fusing = fusion_ != nullptr && fusion_enabled();
    if (fusing) {
      fusion_->begin_episode(shard);
      // Healthy-worker rescue: a peer stuck on this plane's hot keys may
      // have donated its batch.  Absorbing it at the pop point folds the
      // conflict into this worker's next commit unit before anyone burns
      // more attempt budget — under overload this, not the exhaustion-time
      // hand-off below, is how most donations get placed.
      fusion_->try_adopt(shard, batch, &fused_pool);
    }
    live.reserve(batch.size());
    const std::uint64_t now = now_ns();
    for (Pending* p : batch) {
      // Deadline check before the batch takes a transaction slot.
      if (p->req.deadline_ns != 0 && p->req.deadline_ns < now) {
        sink_->add(metrics::CounterId::kSvcExpired);
        complete(p, SvcStatus::kExpired);
      } else {
        live.push_back(p);
      }
    }
    // Key-sort the batch by each script's FIRST step key (stable:
    // same-key requests keep arrival order, preserving read-after-write
    // for a pipelining client whose ops landed in one batch).  Concurrent
    // requests carry no cross-key ordering obligation, and ascending keys
    // turn the batch's structure traversals into short hint-relative hops
    // instead of full walks from the head — the locality that makes
    // coalescing pay.  Multi-step scripts only benefit from their lead
    // step; their tails touch other structures anyway.
    sort_by_lead_key(live);
    if (!live.empty()) run_or_split(shard, live, acks, fused_pool, fusing);
    if (!acks.empty()) {
      // The group-commit flush: every dirty shard log, not just ours —
      // this drain's commits (and the values its reads returned) may
      // depend on records another worker appended but has not yet synced.
      active_wal()->sync_all();
      const std::uint64_t done = now_ns();
      for (Pending* p : acks) {
        sink_->record_phase(metrics::Phase::kService, done - p->enqueue_ns);
        complete(p, SvcStatus::kOk);
      }
    }
  }

  static void sort_by_lead_key(std::vector<Pending*>& batch) {
    if (batch.size() > 1) {
      std::stable_sort(batch.begin(), batch.end(),
                       [](const Pending* a, const Pending* b) {
                         return a->req.steps[0].key < b->req.steps[0].key;
                       });
    }
  }

  void run_or_split(unsigned shard, std::vector<Pending*>& batch,
                    std::vector<Pending*>& acks, tx::DescriptorPool& pool,
                    bool fusing) {
    std::vector<Pending*> deferred;
    run_batch(shard, batch, deferred, acks, pool, fusing);
    // Guard-abort victims re-run SOLO: inside the coalesced batch their
    // guard may have tripped over a batchmate's rolled-back overlay writes
    // (e.g. another script popped the only element this attempt), which is
    // not a real outcome.  Solo, the verdict is clean — commit or genuine
    // guard failure — and run_batch completes them inline either way, so
    // this loop never grows `deferred`.  Fusion stays off for these runs:
    // adopting a donation would un-solo the batch and cost the victim its
    // definitive verdict.
    for (std::size_t i = 0; i < deferred.size(); ++i) {
      std::vector<Pending*> solo{deferred[i]};
      run_batch(shard, solo, deferred, acks, pool, /*fusing=*/false);
    }
  }

  void run_batch(unsigned shard, std::vector<Pending*>& batch,
                 std::vector<Pending*>& deferred,
                 std::vector<Pending*>& acks, tx::DescriptorPool& pool,
                 bool fusing) {
    Backoff backoff(Backoff::kDefaultCap);
    // stop()-before-start() drains on the stopping thread with the log
    // never opened; those batches run undurable (the service never started,
    // so the acknowledged=>durable contract never began).
    Wal* wal = active_wal();
    if (wal != nullptr && !wal->is_open()) wal = nullptr;
    std::vector<WalOp> redo;
    // The commit gate covers every transaction in the plane while fusion is
    // enabled — including solo guard re-runs (fusing=false), so an
    // exclusive escalation holder truly quiesces all plane writers.
    const bool gated = fusion_ != nullptr && fusion_enabled();
    bool escalated = false;
    for (;;) {
      Pending* victim = nullptr;
      BatchOutcome out;
      if (escalated) {
        // Serialized escalation (fusion.h): one attempt under the exclusive
        // gate.  No concurrent plane transaction is mid-attempt, so
        // semantic validation cannot fail and the fused conflict set
        // commits here — unless a fault hook or guard storm intervenes,
        // which falls through to split-retry below.
        std::unique_lock<std::shared_mutex> gate(fusion_->gate());
        out = try_batch_tx(shard, batch, &victim,
                           wal != nullptr ? &redo : nullptr,
                           fusing ? &pool : nullptr, /*attempts=*/1);
      } else if (gated) {
        std::shared_lock<std::shared_mutex> gate(fusion_->gate());
        out = try_batch_tx(shard, batch, &victim,
                           wal != nullptr ? &redo : nullptr,
                           fusing ? &pool : nullptr);
      } else {
        out = try_batch_tx(shard, batch, &victim,
                           wal != nullptr ? &redo : nullptr,
                           fusing ? &pool : nullptr);
      }
      switch (out) {
        case BatchOutcome::kCommitted: {
          sink_->add(metrics::CounterId::kSvcBatches);
          sink_->record_batch_size(batch.size());
          if (wal != nullptr && wal->options().fsync == WalFsync::kGroup) {
            // The record (if any) was appended by the commit hook; ack
            // only after the drain-wide sync_all in execute_batch.
            // Read-only batches defer too: a read may have observed a
            // write another shard has appended but not yet fsynced, and
            // acknowledging the value before that record is durable would
            // leak a state the recovered service never had.
            acks.insert(acks.end(), batch.begin(), batch.end());
            return;
          }
          // Always-fsync (the commit hook synced before the locks
          // released) or durability off: acknowledge immediately.
          const std::uint64_t done = now_ns();
          for (Pending* p : batch) {
            sink_->record_phase(metrics::Phase::kService,
                                done - p->enqueue_ns);
            complete(p, SvcStatus::kOk);
          }
          return;
        }
        case BatchOutcome::kGuardAbort: {
          if (batch.size() == 1) {
            // Solo guard failure is definitive: the script linearises as a
            // read-only no-op at the failed guard, and the per-step results
            // (filled by apply before it threw) tell the client where it
            // stopped.  Completed here so the batch-size ledger identity
            // (enqueued == batch totals + expired) still holds.
            sink_->add(metrics::CounterId::kSvcGuardAborts);
            sink_->add(metrics::CounterId::kSvcBatches);
            sink_->record_batch_size(1);
            if (wal != nullptr &&
                wal->options().fsync == WalFsync::kGroup) {
              // The guard's verdict is an observation of state that may
              // depend on not-yet-synced records: ack after the flush.
              acks.push_back(victim);
              return;
            }
            sink_->record_phase(metrics::Phase::kService,
                                now_ns() - victim->enqueue_ns);
            complete(victim, SvcStatus::kOk);
            return;
          }
          batch.erase(std::find(batch.begin(), batch.end(), victim));
          deferred.push_back(victim);
          continue;  // reduced batch retries with a fresh attempt budget
        }
        case BatchOutcome::kBudgetSpent:
          break;
      }
      // Attempt budget spent without a commit.
      sink_->add(metrics::CounterId::kSvcBatchSplits);
      if (fusing && !escalated) {
        // Contention manager (fusion.h): fuse first, serialize second,
        // split last.  Either absorb a conflicting peer's donated batch
        // into this commit unit, or donate ours and let the union-find
        // pick the one worker that absorbs the whole conflict set.
        if (fusion_->try_adopt(shard, batch, &pool) != 0) {
          sort_by_lead_key(batch);
          continue;  // merged commit unit retries with a fresh budget
        }
        switch (fusion_->offer_and_wait(shard, batch, &pool)) {
          case OfferOutcome::kAdopted:
            return;  // a peer owns (and completes) these requests now
          case OfferOutcome::kMerged:
            sort_by_lead_key(batch);
            continue;
          case OfferOutcome::kWithdrawn:
            // Nobody could fuse: escalate to the gated serial attempt.
            escalated = true;
            continue;
        }
      }
      if (batch.size() > 1) {
        sink_->add(metrics::CounterId::kSvcSplitRetries);
        const std::size_t half = batch.size() / 2;
        std::vector<Pending*> right(batch.begin() + half, batch.end());
        batch.resize(half);
        backoff.pause();
        // depth ≤ log2(cap)
        run_batch(shard, batch, deferred, acks, pool, fusing);
        run_batch(shard, right, deferred, acks, pool, fusing);
        return;
      }
      // Singleton: re-check its deadline, then keep retrying — conflicts
      // degrade latency, never results.
      Pending* p = batch.front();
      if (p->req.deadline_ns != 0 && p->req.deadline_ns < now_ns()) {
        sink_->add(metrics::CounterId::kSvcExpired);
        complete(p, SvcStatus::kExpired);
        return;
      }
      backoff.pause();
    }
  }

  /// Run every request of `batch` in one transaction, retrying up to
  /// cfg_.batch_attempts times (or `attempts` when non-zero — the gated
  /// escalation retry passes 1).  Returns kBudgetSpent when the budget is
  /// exhausted (caller splits) and kGuardAbort with `*victim` set when a
  /// script's guard failed (the attempt rolls back without consuming
  /// budget; the caller decides the victim's fate).  Accounting flows
  /// through the standard otb.tx sink — batch transactions are ordinary
  /// boosted transactions.  This is tx::atomically's loop with a bounded
  /// attempt count; like it, non-abort exceptions still abandon held state
  /// before escaping.
  ///
  /// `fused_pool`, when non-null, is the fusion descriptor conduit: the
  /// transaction is seeded with descriptors adopted from donated commit
  /// units (their structures re-attach allocation-free), and on budget
  /// exhaustion the transaction's parked pool is harvested back out so the
  /// caller can ship it to an adopter (fusion.h).
  BatchOutcome try_batch_tx(unsigned shard, std::vector<Pending*>& batch,
                            Pending** victim, std::vector<WalOp>* redo,
                            tx::DescriptorPool* fused_pool = nullptr,
                            unsigned attempts = 0) {
    if (attempts == 0) attempts = cfg_.batch_attempts;
    metrics::MetricsSink& tx_sink = tx::metrics_sink();
    Backoff backoff(Backoff::kDefaultCap);
    tx::Transaction t;
    if (fused_pool != nullptr && !fused_pool->empty()) {
      t.adopt_descriptor_pool(std::move(*fused_pool));
    }
    // The WAL append runs from the commit hook — inside commit(), after the
    // stamp is drawn and BEFORE the semantic locks release.  That ordering
    // is what makes cross-shard group commit sound: by the time any
    // dependent transaction can read this batch's writes, its record is in
    // the log stream, so the dependent's pre-ack sync_all() covers it.
    struct AppendCtx {
      Service* svc;
      unsigned shard;
      std::vector<WalOp>* redo;
    } ctx{this, shard, redo};
    if (redo != nullptr) {
      t.set_commit_clock(&active_wal()->clock());
      t.set_commit_hook(
          [](void* arg, std::uint64_t stamp) {
            auto* c = static_cast<AppendCtx*>(arg);
            if (!c->redo->empty()) {
              c->svc->active_wal()->append(c->shard, stamp, c->redo->data(),
                                           c->redo->size());
            }
          },
          &ctx);
    }
    for (unsigned attempt = 0; attempt < attempts; ++attempt) {
      t.begin_attempt();
      if (redo != nullptr) redo->clear();
      try {
        for (Pending* p : batch) apply(t, p, redo);
        if (cfg_.batch_fault_hook) cfg_.batch_fault_hook(batch.size());
        t.commit();
        tx_sink.record_attempt(t.tally(), /*committed=*/true,
                               metrics::AbortReason::kNone);
        return BatchOutcome::kCommitted;
      } catch (const ScriptAbort& sa) {
        t.abandon();
        tx_sink.record_attempt(t.tally(), /*committed=*/false,
                               metrics::AbortReason::kExplicit);
        *victim = sa.victim;
        return BatchOutcome::kGuardAbort;
      } catch (const TxAbort& abort) {
        t.abandon();
        tx_sink.record_attempt(t.tally(), /*committed=*/false, abort.reason);
        backoff.pause();
      } catch (...) {
        t.abandon();
        tx_sink.record_attempt(t.tally(), /*committed=*/false,
                               metrics::AbortReason::kExplicit);
        throw;
      }
    }
    // Every failed attempt parked its descriptors (abandon ->
    // recycle_attached), so the pool now holds one reset descriptor per
    // structure this commit unit touched — hand it back for a possible
    // fusion donation.
    if (fused_pool != nullptr) *fused_pool = t.take_descriptor_pool();
    return BatchOutcome::kBudgetSpent;
  }

  /// One client script inside the batch transaction.  Steps run in order;
  /// bindings read earlier steps' result values; a failed guard fills the
  /// remaining results as not-run and throws ScriptAbort.  Results land
  /// directly in the Pending cell (rebuilt from scratch on every attempt —
  /// an attempt may be a retry): only this worker touches it until the
  /// completing status store publishes them.
  ///
  /// With durability on (`redo` non-null), every effective mutation is
  /// appended to the attempt's redo buffer with its binding-resolved key
  /// and value: puts and heap pushes always, conditional mutations only
  /// when they took effect, pop_min with the key it popped (so replay can
  /// cross-check), reads never.  The buffer becomes the batch's WAL record
  /// if this attempt commits.
  void apply(tx::Transaction& t, Pending* p, std::vector<WalOp>* redo) {
    const Request& r = p->req;
    p->results.clear();
    p->results.reserve(r.steps.size());
    p->range_out.clear();
    p->ok = true;
    p->value = 0;
    for (std::size_t i = 0; i < r.steps.size(); ++i) {
      const Step& s = r.steps[i];
      const std::int64_t key =
          s.key_from >= 0 ? p->results[s.key_from].value : s.key;
      const std::int64_t value =
          s.value_from >= 0 ? p->results[s.value_from].value : s.value;
      StepResult res;
      res.ran = true;
      switch (targets_.slots[s.structure].kind) {
        case StructureKind::kMap: {
          tx::OtbListMap* m = targets_.map(s.structure);
          switch (s.verb) {
            case Verb::kGet:
              res.ok = m->get(t, key, &res.value);
              break;
            case Verb::kPut:
              res.ok = m->put(t, key, value);
              res.value = value;
              if (redo != nullptr) {
                redo->push_back(WalOp{s.structure, Verb::kPut, key, value});
              }
              break;
            case Verb::kErase:
              res.ok = m->erase(t, key);
              res.value = key;
              if (redo != nullptr && res.ok) {
                redo->push_back(WalOp{s.structure, Verb::kErase, key, 0});
              }
              break;
            case Verb::kContains:
              res.ok = m->contains(t, key);
              res.value = key;
              break;
            case Verb::kRange:
              // range() appends and returns its own pair count, so each
              // range step of the script owns a contiguous segment of
              // range_out sized by its result value.
              res.value = static_cast<std::int64_t>(
                  m->range(t, key, value, &p->range_out));
              res.ok = true;
              break;
            default:
              break;  // unreachable: validate_script rejected it
          }
          break;
        }
        case StructureKind::kSet: {
          tx::OtbListSet* st = targets_.set(s.structure);
          switch (s.verb) {
            case Verb::kAdd:
              res.ok = st->add(t, key);
              if (redo != nullptr && res.ok) {
                redo->push_back(WalOp{s.structure, Verb::kAdd, key, 0});
              }
              break;
            case Verb::kRemove:
              res.ok = st->remove(t, key);
              if (redo != nullptr && res.ok) {
                redo->push_back(WalOp{s.structure, Verb::kRemove, key, 0});
              }
              break;
            case Verb::kContains:
              res.ok = st->contains(t, key);
              break;
            default:
              break;  // unreachable: validate_script rejected it
          }
          res.value = key;
          break;
        }
        case StructureKind::kHeapPq: {
          tx::OtbHeapPQ* q = targets_.heap_pq(s.structure);
          switch (s.verb) {
            case Verb::kPush:
              q->add(t, key);
              res.ok = true;
              res.value = key;
              if (redo != nullptr) {
                redo->push_back(WalOp{s.structure, Verb::kPush, key, 0});
              }
              break;
            case Verb::kPopMin:
              res.ok = q->remove_min(t, &res.value);
              if (redo != nullptr && res.ok) {
                redo->push_back(WalOp{s.structure, Verb::kPopMin, res.value, 0});
              }
              break;
            case Verb::kMin:
              res.ok = q->min(t, &res.value);
              break;
            default:
              break;  // unreachable: validate_script rejected it
          }
          break;
        }
        case StructureKind::kSlPq: {
          tx::OtbSkipListPQ* q = targets_.sl_pq(s.structure);
          switch (s.verb) {
            case Verb::kPush:
              res.ok = q->add(t, key);
              res.value = key;
              if (redo != nullptr && res.ok) {
                redo->push_back(WalOp{s.structure, Verb::kPush, key, 0});
              }
              break;
            case Verb::kPopMin:
              res.ok = q->remove_min(t, &res.value);
              if (redo != nullptr && res.ok) {
                redo->push_back(WalOp{s.structure, Verb::kPopMin, res.value, 0});
              }
              break;
            case Verb::kMin:
              res.ok = q->min(t, &res.value);
              break;
            default:
              break;  // unreachable: validate_script rejected it
          }
          break;
        }
      }
      p->results.push_back(res);
      p->value = res.value;
      if (!res.ok) p->ok = false;
      const bool guard_failed =
          (s.required && !res.ok) ||
          (s.has_expect && (!res.ok || res.value != s.expect));
      if (guard_failed) {
        for (std::size_t j = i + 1; j < r.steps.size(); ++j) {
          p->results.push_back(StepResult{});  // ran = false
        }
        p->ok = false;
        throw ScriptAbort{p};
      }
    }
  }

  /// The WAL once it is appendable.  Null before start() opens it (a
  /// stop()-before-start drain therefore completes requests without
  /// logging: the service never ran, nothing was acknowledged as durable).
  Wal* active_wal() const {
    return wal_ != nullptr && wal_->is_open() ? wal_.get() : nullptr;
  }

  /// Copy every registered structure's contents (checkpoint pause only —
  /// the snapshot_unsafe accessors need quiescence).
  void capture_slots(std::vector<CheckpointSlot>* out) const {
    for (std::size_t i = 0; i < targets_.count; ++i) {
      const Targets::Slot& slot = targets_.slots[i];
      if (slot.ptr == nullptr) continue;
      CheckpointSlot cs;
      cs.slot = static_cast<StructureId>(i);
      cs.kind = slot.kind;
      const StructureId id = cs.slot;
      switch (slot.kind) {
        case StructureKind::kMap:
          cs.entries = targets_.map(id)->snapshot_unsafe();
          break;
        case StructureKind::kSet:
          for (std::int64_t k : targets_.set(id)->snapshot_unsafe()) {
            cs.entries.emplace_back(k, 0);
          }
          break;
        case StructureKind::kHeapPq:
          for (std::int64_t k : targets_.heap_pq(id)->snapshot_unsafe()) {
            cs.entries.emplace_back(k, 0);
          }
          break;
        case StructureKind::kSlPq:
          for (std::int64_t k : targets_.sl_pq(id)->snapshot_unsafe()) {
            cs.entries.emplace_back(k, 0);
          }
          break;
      }
      out->push_back(std::move(cs));
    }
  }

  void checkpoint_loop() {
    set_this_thread_name("svc/ckpt");
    const auto interval = std::chrono::milliseconds(cfg_.wal_checkpoint_ms);
    auto next = std::chrono::steady_clock::now() + interval;
    while (!ckpt_stop_.load(std::memory_order_acquire)) {
      if (std::chrono::steady_clock::now() >= next) {
        checkpoint_now();
        next = std::chrono::steady_clock::now() + interval;
      }
      // Short sleep slices keep stop() latency bounded without a CV.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  Targets targets_;
  ServiceConfig cfg_;
  ShardedQueue queue_;
  metrics::MetricsSink* sink_;
  std::unique_ptr<Wal> wal_;
  // Contention manager (fusion.h); null on single-worker planes.
  std::unique_ptr<FusionPlane> fusion_;
  // Checkpoint pause point: workers hold the shared side per drained
  // batch; checkpoint_now takes it exclusively to reach quiescence.
  std::shared_mutex pause_;
  std::thread ckpt_thread_;
  std::atomic<bool> ckpt_stop_{false};
  bool recovered_ = false;
  std::vector<std::thread> workers_;
  // Admission opens at construction (not start()) so tests can pre-load
  // queues before any worker runs; only stop() closes it.
  std::atomic<bool> accepting_{true};
  std::atomic<bool> running_{false};
  std::atomic<bool> started_{false};
  std::atomic<std::uint32_t> submits_in_flight_{0};
};

}  // namespace otb::service
