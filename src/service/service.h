// The in-process transactional service plane (DESIGN.md "Transactional
// service plane").
//
// Clients submit typed requests (request.h); sharded bounded MPSC rings
// (queue.h) buffer them; worker threads drain their own shard and coalesce
// up to `batch_max` requests into ONE boosted transaction — many
// fine-grained client operations composed into fewer, larger atomic steps,
// which is exactly the regime where the commit-sequence fast path and
// traversal hints pay (per-transaction costs amortise over ops/tx).
//
// Robustness:
//   * admission control — a submit against a queue at its high-water mark
//     completes immediately as kOverloaded; admitted requests therefore see
//     bounded queueing delay no matter the offered load;
//   * per-request deadlines — a request whose deadline passed while queued
//     completes as kExpired before it wastes a transaction slot;
//   * split-retry — a batch that cannot commit within `batch_attempts`
//     transaction attempts (contention, injected aborts) is split in half
//     and each half retried under the capped-jittered Backoff; singletons
//     retry until they commit or expire, so persistent conflicts degrade
//     throughput, never results;
//   * stop()/drain — stop() (and SIGTERM via net.h) closes admission, waits
//     out in-flight submits, then workers drain every queued request to a
//     terminal status before exiting: no lost completions.
//
// Metrics (domain "otb.service", schema otb.metrics/3): svc_* admission /
// completion counters, queue-depth + batch-size log2 series, and the
// "service" phase histogram of enqueue-to-completion latency.  The batch
// transactions themselves keep reporting through "otb.tx" as always.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>
#include <vector>

#include "common/platform.h"
#include "common/spinlock.h"
#include "common/tx_abort.h"
#include "metrics/registry.h"
#include "metrics/sink.h"
#include "otb/otb_heap_pq.h"
#include "otb/otb_list_map.h"
#include "otb/otb_list_set.h"
#include "otb/otb_skiplist_pq.h"
#include "otb/runtime.h"
#include "service/queue.h"
#include "service/request.h"

namespace otb::service {

namespace detail {
inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}
}  // namespace detail

/// Structures the service serves.  Ops against a null target complete as
/// kFailed — a service may expose any subset.
struct Targets {
  tx::OtbListMap* map = nullptr;
  tx::OtbListSet* set = nullptr;
  tx::OtbHeapPQ* heap_pq = nullptr;
  tx::OtbSkipListPQ* sl_pq = nullptr;
};

struct ServiceConfig {
  unsigned workers = 2;               // drain threads (= queue shards)
  unsigned batch_max = 16;            // requests coalesced per transaction
  std::size_t queue_capacity = 1024;  // per shard, rounded up to 2^k
  std::size_t high_water = 0;         // per shard; 0 = queue_capacity
  unsigned batch_attempts = 4;        // tx attempts before a batch splits
  std::uint64_t default_deadline_ns = 0;  // applied when a request has none

  /// Test hook, run INSIDE every batch transaction just before commit.
  /// Throwing TxAbort (the same explicit-abort channel the abort-taxonomy
  /// injection tests use) fails the attempt; spending the whole attempt
  /// budget forces a split-retry.  Never set in production.
  std::function<void(std::size_t batch_size)> batch_fault_hook;

  /// Metrics sink; null = Registry::global().sink("otb.service").
  metrics::MetricsSink* metrics = nullptr;

  /// Defaults overridable from the environment (docs/KNOBS.md):
  /// OTB_SERVICE_WORKERS, OTB_SERVICE_BATCH_MAX, OTB_SERVICE_QUEUE_CAP,
  /// OTB_SERVICE_HIGH_WATER, OTB_SERVICE_BATCH_ATTEMPTS,
  /// OTB_SERVICE_DEADLINE_MS.
  static ServiceConfig from_env() {
    ServiceConfig cfg;
    cfg.workers = static_cast<unsigned>(
        detail::env_u64("OTB_SERVICE_WORKERS", cfg.workers));
    cfg.batch_max = static_cast<unsigned>(
        detail::env_u64("OTB_SERVICE_BATCH_MAX", cfg.batch_max));
    cfg.queue_capacity = static_cast<std::size_t>(
        detail::env_u64("OTB_SERVICE_QUEUE_CAP", cfg.queue_capacity));
    cfg.high_water = static_cast<std::size_t>(
        detail::env_u64("OTB_SERVICE_HIGH_WATER", cfg.high_water));
    cfg.batch_attempts = static_cast<unsigned>(
        detail::env_u64("OTB_SERVICE_BATCH_ATTEMPTS", cfg.batch_attempts));
    cfg.default_deadline_ns =
        detail::env_u64("OTB_SERVICE_DEADLINE_MS", 0) * 1'000'000ull;
    return cfg;
  }
};

class Service {
 public:
  explicit Service(Targets targets, ServiceConfig cfg = ServiceConfig{})
      : targets_(targets),
        cfg_(sanitise(std::move(cfg))),
        queue_(cfg_.workers, cfg_.queue_capacity, cfg_.high_water),
        sink_(cfg_.metrics != nullptr
                  ? cfg_.metrics
                  : &metrics::Registry::global().sink("otb.service")) {}

  ~Service() { stop(); }

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Launch the worker threads.  Separate from the constructor so tests can
  /// pre-load queues (admission and deadline behaviour without racing a
  /// drain) before any worker runs.
  void start() {
    if (started_.exchange(true)) return;
    running_.store(true, std::memory_order_release);
    workers_.reserve(cfg_.workers);
    for (unsigned w = 0; w < cfg_.workers; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  /// Close admission, drain every queued request to a terminal status, and
  /// join the workers.  Idempotent; also invoked by the destructor and the
  /// net adapter's SIGTERM path.
  void stop() {
    accepting_.store(false, std::memory_order_seq_cst);
    // Dekker with submit(): once no submit is mid-push, every future submit
    // observes accepting_ == false and rejects, so the drains below see the
    // final queue contents.
    while (submits_in_flight_.load(std::memory_order_seq_cst) != 0) {
      cpu_relax();
    }
    if (started_.load(std::memory_order_acquire)) {
      running_.store(false, std::memory_order_release);
      queue_.wake_all();
      for (auto& t : workers_) {
        if (t.joinable()) t.join();
      }
      workers_.clear();
      started_.store(false, std::memory_order_release);
    } else {
      // stop() before start(): no workers exist, so the stopping thread
      // drains (admitted requests still complete, running on this thread).
      for (unsigned s = 0; s < queue_.shard_count(); ++s) drain_shard(s);
    }
  }

  bool accepting() const {
    return accepting_.load(std::memory_order_acquire);
  }

  /// Submit one request.  Always returns a valid future; admission failures
  /// (high-water or stopped service) complete it as kOverloaded before
  /// returning.  Safe from any number of producer threads.
  ResponseFuture submit(Request req) {
    Pending* p = new Pending;
    if (req.deadline_ns == 0 && cfg_.default_deadline_ns != 0) {
      req.deadline_ns = now_ns() + cfg_.default_deadline_ns;
    }
    p->req = req;
    p->enqueue_ns = now_ns();
    ResponseFuture fut(p);
    submits_in_flight_.fetch_add(1, std::memory_order_seq_cst);
    const bool admitted =
        accepting_.load(std::memory_order_seq_cst) && queue_.try_push(p);
    submits_in_flight_.fetch_sub(1, std::memory_order_seq_cst);
    if (!admitted) {
      sink_->add(metrics::CounterId::kSvcRejected);
      complete(p, SvcStatus::kOverloaded);
      return fut;
    }
    sink_->add(metrics::CounterId::kSvcEnqueued);
    return fut;
  }

  const ServiceConfig& config() const { return cfg_; }
  metrics::MetricsSink& metrics_sink() { return *sink_; }
  std::size_t queue_size() const { return queue_.total_size(); }

 private:
  static ServiceConfig sanitise(ServiceConfig cfg) {
    if (cfg.workers == 0) cfg.workers = 1;
    if (cfg.batch_max == 0) cfg.batch_max = 1;
    if (cfg.queue_capacity < 2) cfg.queue_capacity = 2;
    if (cfg.batch_attempts == 0) cfg.batch_attempts = 1;
    return cfg;
  }

  void worker_loop(unsigned shard) {
    char name[16];
    std::snprintf(name, sizeof(name), "svc/w%u", shard);
    set_this_thread_name(name);
    std::vector<Pending*> batch;
    batch.reserve(cfg_.batch_max);
    for (;;) {
      const std::uint32_t doorbell = queue_.doorbell(shard);
      // Depth sampled BEFORE popping: the backlog a newly arriving request
      // would queue behind.
      const std::size_t depth = queue_.shard_size(shard);
      batch.clear();
      for (unsigned i = 0; i < cfg_.batch_max; ++i) {
        Pending* p = queue_.try_pop(shard);
        if (p == nullptr) break;
        batch.push_back(p);
      }
      if (batch.empty()) {
        if (!running_.load(std::memory_order_acquire)) break;
        queue_.wait(shard, doorbell);
        continue;
      }
      sink_->record_queue_depth(depth);
      execute_batch(batch);
    }
    // Drain sweep: stop() guarantees no push starts after running_ clears,
    // but pushes admitted before it may still sit in the ring.
    drain_shard(shard);
  }

  void drain_shard(unsigned shard) {
    std::vector<Pending*> batch;
    batch.reserve(cfg_.batch_max);
    for (;;) {
      batch.clear();
      for (unsigned i = 0; i < cfg_.batch_max; ++i) {
        Pending* p = queue_.try_pop(shard);
        if (p == nullptr) break;
        batch.push_back(p);
      }
      if (batch.empty()) return;
      execute_batch(batch);
    }
  }

  /// Execute one batch: expire stale requests, run the rest in a single
  /// boosted transaction, split on repeated failure.
  void execute_batch(std::vector<Pending*>& batch) {
    // Per-thread scratch: one batch is in flight per worker, and the
    // split recursion never re-enters execute_batch.
    static thread_local std::vector<Pending*> live;
    live.clear();
    live.reserve(batch.size());
    const std::uint64_t now = now_ns();
    for (Pending* p : batch) {
      // Deadline check before the batch takes a transaction slot.
      if (p->req.deadline_ns != 0 && p->req.deadline_ns < now) {
        sink_->add(metrics::CounterId::kSvcExpired);
        complete(p, SvcStatus::kExpired);
      } else {
        live.push_back(p);
      }
    }
    if (live.size() > 1) {
      // Key-sort the batch (stable: same-key requests keep arrival order,
      // preserving read-after-write for a pipelining client whose ops
      // landed in one batch).  Concurrent requests carry no cross-key
      // ordering obligation, and ascending keys turn the batch's structure
      // traversals into short hint-relative hops instead of full walks
      // from the head — the locality that makes coalescing pay.
      std::stable_sort(live.begin(), live.end(),
                       [](const Pending* a, const Pending* b) {
                         return a->req.key < b->req.key;
                       });
    }
    if (!live.empty()) run_or_split(live);
  }

  void run_or_split(std::vector<Pending*>& batch) {
    Backoff backoff(Backoff::kDefaultCap);
    for (;;) {
      if (try_batch_tx(batch)) {
        sink_->add(metrics::CounterId::kSvcBatches);
        sink_->record_batch_size(batch.size());
        const std::uint64_t done = now_ns();
        for (Pending* p : batch) {
          if (p->failed) {
            sink_->add(metrics::CounterId::kSvcFailed);
            complete(p, SvcStatus::kFailed);
          } else {
            sink_->record_phase(metrics::Phase::kService,
                                done - p->enqueue_ns);
            complete(p, SvcStatus::kOk);
          }
        }
        return;
      }
      // Attempt budget spent without a commit.
      sink_->add(metrics::CounterId::kSvcBatchSplits);
      if (batch.size() > 1) {
        const std::size_t half = batch.size() / 2;
        std::vector<Pending*> right(batch.begin() + half, batch.end());
        batch.resize(half);
        backoff.pause();
        run_or_split(batch);  // depth ≤ log2(batch_max)
        run_or_split(right);
        return;
      }
      // Singleton: re-check its deadline, then keep retrying — conflicts
      // degrade latency, never results.
      Pending* p = batch.front();
      if (p->req.deadline_ns != 0 && p->req.deadline_ns < now_ns()) {
        sink_->add(metrics::CounterId::kSvcExpired);
        complete(p, SvcStatus::kExpired);
        return;
      }
      backoff.pause();
    }
  }

  /// Run every request of `batch` in one transaction, retrying up to
  /// cfg_.batch_attempts times.  Returns false when the budget is spent
  /// (caller splits).  Accounting flows through the standard otb.tx sink —
  /// batch transactions are ordinary boosted transactions.  This is
  /// tx::atomically's loop with a bounded attempt count; like it, non-abort
  /// exceptions still abandon held state before escaping.
  bool try_batch_tx(std::vector<Pending*>& batch) {
    metrics::MetricsSink& tx_sink = tx::metrics_sink();
    Backoff backoff(Backoff::kDefaultCap);
    tx::Transaction t;
    for (unsigned attempt = 0; attempt < cfg_.batch_attempts; ++attempt) {
      t.begin_attempt();
      try {
        for (Pending* p : batch) apply(t, p);
        if (cfg_.batch_fault_hook) cfg_.batch_fault_hook(batch.size());
        t.commit();
        tx_sink.record_attempt(t.tally(), /*committed=*/true,
                               metrics::AbortReason::kNone);
        return true;
      } catch (const TxAbort& abort) {
        t.abandon();
        tx_sink.record_attempt(t.tally(), /*committed=*/false, abort.reason);
        backoff.pause();
      } catch (...) {
        t.abandon();
        tx_sink.record_attempt(t.tally(), /*committed=*/false,
                               metrics::AbortReason::kExplicit);
        throw;
      }
    }
    return false;
  }

  /// One client request inside the batch transaction.  Results land
  /// directly in the Pending cell: only this worker touches it until the
  /// completing status store publishes them.
  void apply(tx::Transaction& t, Pending* p) {
    const Request& r = p->req;
    switch (r.op) {
      case Op::kMapGet:
        if (targets_.map == nullptr) break;
        p->value = 0;
        p->ok = targets_.map->get(t, r.key, &p->value);
        return;
      case Op::kMapPut:
        if (targets_.map == nullptr) break;
        p->ok = targets_.map->put(t, r.key, r.value);
        return;
      case Op::kMapErase:
        if (targets_.map == nullptr) break;
        p->ok = targets_.map->erase(t, r.key);
        return;
      case Op::kMapRange:
        if (targets_.map == nullptr) break;
        p->range_out.clear();  // this attempt may be a retry
        targets_.map->range(t, r.key, r.value, &p->range_out);
        p->value = static_cast<std::int64_t>(p->range_out.size());
        p->ok = true;
        return;
      case Op::kSetAdd:
        if (targets_.set == nullptr) break;
        p->ok = targets_.set->add(t, r.key);
        return;
      case Op::kSetRemove:
        if (targets_.set == nullptr) break;
        p->ok = targets_.set->remove(t, r.key);
        return;
      case Op::kSetContains:
        if (targets_.set == nullptr) break;
        p->ok = targets_.set->contains(t, r.key);
        return;
      case Op::kHeapPush:
        if (targets_.heap_pq == nullptr) break;
        targets_.heap_pq->add(t, r.key);
        p->ok = true;
        return;
      case Op::kHeapPopMin:
        if (targets_.heap_pq == nullptr) break;
        p->value = 0;
        p->ok = targets_.heap_pq->remove_min(t, &p->value);
        return;
      case Op::kSlPush:
        if (targets_.sl_pq == nullptr) break;
        p->ok = targets_.sl_pq->add(t, r.key);
        return;
      case Op::kSlPopMin:
        if (targets_.sl_pq == nullptr) break;
        p->value = 0;
        p->ok = targets_.sl_pq->remove_min(t, &p->value);
        return;
    }
    p->ok = false;
    p->failed = true;
  }

  Targets targets_;
  ServiceConfig cfg_;
  ShardedQueue queue_;
  metrics::MetricsSink* sink_;
  std::vector<std::thread> workers_;
  // Admission opens at construction (not start()) so tests can pre-load
  // queues before any worker runs; only stop() closes it.
  std::atomic<bool> accepting_{true};
  std::atomic<bool> running_{false};
  std::atomic<bool> started_{false};
  std::atomic<std::uint32_t> submits_in_flight_{0};
};

}  // namespace otb::service
