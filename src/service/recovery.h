// Checkpoint + crash-recovery replay for the service write-ahead log
// (wal.h, docs/DURABILITY.md).
//
// On-disk layout inside the WAL directory:
//   wal-<shard>-<segment>.log   commit records (wal.h framing)
//   ckpt-<seq>.snap             full snapshot of every registered slot,
//                               consistent as of commit sequence <seq>
//   last_checkpoint             manifest naming the live snapshot file;
//                               written to a temp name and rename(2)d, so
//                               it is either the old or the new manifest,
//                               never a torn one (the deeplog
//                               `last_checkpoint` compaction shape)
//
// Checkpoint protocol (Service::checkpoint_now): pause the workers at a
// batch boundary, read the commit clock S, copy every slot's contents
// (snapshot_unsafe — safe: quiescent), rotate every shard to a fresh
// segment, resume the workers; then — off the critical path — write
// ckpt-<S>.snap, fsync it, rename the manifest over, and delete the
// pre-rotation segments and older snapshots.  Every record in a
// pre-rotation segment has seq <= S (the clock was read with no commit in
// flight), so deleting them loses nothing; a crash anywhere in the
// off-critical-path tail leaves the previous manifest + full segment set,
// which recovery replays instead.
//
// Recovery (recover_into): load the manifest's checkpoint (if any) into the
// caller's registered structures — which must then be empty, the snapshot
// IS the state — otherwise run the caller's `seed_baseline` closure (the
// same deterministic pre-seeding the original run did before start());
// then scan every segment, tolerate a torn final record by truncating the
// file at the damage point (only when nothing valid follows it — wal.h's
// scan distinguishes a torn tail from mid-log damage), merge all shards'
// records by commit stamp, and replay each record > checkpoint-seq as one
// transaction.  Replay cross-checks every conditional mutation (an erase
// that was logged took effect; a pop_min pops the logged key); any
// mismatch, out-of-order or duplicate stamp, or damage that is not a torn
// tail fails CLOSED with a distinct status — corrupt state is never
// silently loaded.
#pragma once

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "otb/runtime.h"
#include "service/targets.h"
#include "service/wal.h"

namespace otb::service {

enum class RecoveryStatus : int {
  kOk = 0,          // checkpoint and/or log replayed
  kNoState,         // nothing on disk: fresh start (also success)
  kCorruptLog,      // mid-log damage, stamp disorder, or replay mismatch
  kCorruptCheckpoint,  // snapshot or manifest fails its CRC / structure
  kSlotMismatch,    // disk state does not fit the registered structures
  kIoError,         // filesystem operation failed
};

constexpr bool recovery_ok(RecoveryStatus s) {
  return s == RecoveryStatus::kOk || s == RecoveryStatus::kNoState;
}

constexpr std::string_view to_string(RecoveryStatus s) {
  switch (s) {
    case RecoveryStatus::kOk:
      return "ok";
    case RecoveryStatus::kNoState:
      return "no_state";
    case RecoveryStatus::kCorruptLog:
      return "corrupt_log";
    case RecoveryStatus::kCorruptCheckpoint:
      return "corrupt_checkpoint";
    case RecoveryStatus::kSlotMismatch:
      return "slot_mismatch";
    case RecoveryStatus::kIoError:
      return "io_error";
  }
  return "?";
}

/// Distinct process exit codes for harnesses (bench/load_service --recover;
/// the CI corruption corpus asserts on these).  0 covers both kOk and
/// kNoState; failures stay clear of the 1/2 exit codes the harness uses
/// for usage and load errors.
constexpr int recovery_exit_code(RecoveryStatus s) {
  switch (s) {
    case RecoveryStatus::kOk:
    case RecoveryStatus::kNoState:
      return 0;
    case RecoveryStatus::kCorruptLog:
      return 3;
    case RecoveryStatus::kCorruptCheckpoint:
      return 4;
    case RecoveryStatus::kSlotMismatch:
      return 5;
    case RecoveryStatus::kIoError:
      return 6;
  }
  return 6;
}

struct RecoveryReport {
  RecoveryStatus status = RecoveryStatus::kNoState;
  std::uint64_t checkpoint_seq = 0;  // 0 = no checkpoint loaded
  std::uint64_t last_seq = 0;        // highest sequence applied overall
  std::size_t records_replayed = 0;
  std::size_t ops_replayed = 0;
  std::size_t segments_scanned = 0;
  bool truncated_tail = false;  // a torn final record was cut off
  std::string detail;           // human-readable failure context

  bool ok() const { return recovery_ok(status); }
};

/// One slot's captured contents (checkpoint_now's quiescent copy and the
/// decoded form recovery loads).  `entries.second` is 0 for non-map kinds.
struct CheckpointSlot {
  StructureId slot = 0;
  StructureKind kind = StructureKind::kMap;
  std::vector<std::pair<std::int64_t, std::int64_t>> entries;
};

namespace recovery_detail {

inline bool read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

/// Write `data` then fsync; returns false on any failure.
inline bool write_file_sync(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  ok = std::fflush(f) == 0 && ok;
  ok = ok && ::fsync(::fileno(f)) == 0;
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

/// Frame a payload the way wal.h frames records (len | crc | payload) —
/// checkpoint and manifest files reuse the codec, minus the size cap.
inline std::string frame(const std::string& payload) {
  std::string out;
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  wal_detail::put(&out, len);
  wal_detail::put(&out, crc);
  out += payload;
  return out;
}

/// Unframe a whole file: exactly one frame, CRC-checked.
inline bool unframe(const std::string& file, std::string* payload) {
  if (file.size() < kWalFrameBytes) return false;
  const auto len = wal_detail::get<std::uint32_t>(file.data());
  const auto crc = wal_detail::get<std::uint32_t>(file.data() + 4);
  if (file.size() != kWalFrameBytes + len) return false;
  if (crc32(file.data() + kWalFrameBytes, len) != crc) return false;
  payload->assign(file, kWalFrameBytes, len);
  return true;
}

}  // namespace recovery_detail

inline std::string checkpoint_file_name(std::uint64_t seq) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "ckpt-%020llu.snap",
                static_cast<unsigned long long>(seq));
  return buf;
}

/// Serialize + durably write ckpt-<seq>.snap, then atomically repoint the
/// `last_checkpoint` manifest at it.  Returns false on I/O failure (the old
/// manifest, if any, stays in force).
inline bool write_checkpoint(const std::string& dir, std::uint64_t seq,
                             const std::vector<CheckpointSlot>& slots,
                             std::string* err) {
  std::string payload;
  wal_detail::put(&payload, seq);
  wal_detail::put(&payload, static_cast<std::uint32_t>(slots.size()));
  for (const CheckpointSlot& s : slots) {
    wal_detail::put(&payload, static_cast<std::uint8_t>(s.slot));
    wal_detail::put(&payload, static_cast<std::uint8_t>(s.kind));
    wal_detail::put(&payload, static_cast<std::uint64_t>(s.entries.size()));
    for (const auto& [k, v] : s.entries) {
      wal_detail::put(&payload, k);
      wal_detail::put(&payload, v);
    }
  }
  const std::string name = checkpoint_file_name(seq);
  if (!recovery_detail::write_file_sync(dir + "/" + name,
                                        recovery_detail::frame(payload))) {
    if (err != nullptr) *err = "writing " + name;
    return false;
  }
  std::string manifest;
  wal_detail::put(&manifest, seq);
  wal_detail::put(&manifest, static_cast<std::uint32_t>(name.size()));
  manifest += name;
  const std::string tmp = dir + "/last_checkpoint.tmp";
  if (!recovery_detail::write_file_sync(tmp,
                                        recovery_detail::frame(manifest))) {
    if (err != nullptr) *err = "writing manifest temp";
    return false;
  }
  if (::rename(tmp.c_str(), (dir + "/last_checkpoint").c_str()) != 0) {
    if (err != nullptr) *err = "renaming manifest";
    return false;
  }
  return true;
}

/// Parse the manifest; false if absent.  CRC/structure damage reports
/// `*corrupt = true` (the caller fails closed — a manifest is written
/// atomically, so damage is never a torn write).
inline bool read_manifest(const std::string& dir, std::uint64_t* seq,
                          std::string* ckpt_name, bool* corrupt) {
  std::string file;
  if (!recovery_detail::read_file(dir + "/last_checkpoint", &file)) {
    return false;
  }
  std::string payload;
  if (!recovery_detail::unframe(file, &payload) || payload.size() < 12) {
    *corrupt = true;
    return false;
  }
  *seq = wal_detail::get<std::uint64_t>(payload.data());
  const auto name_len = wal_detail::get<std::uint32_t>(payload.data() + 8);
  if (payload.size() != 12 + name_len) {
    *corrupt = true;
    return false;
  }
  ckpt_name->assign(payload, 12, name_len);
  return true;
}

/// Decode ckpt file payload into slots; false on structural damage.
inline bool decode_checkpoint(const std::string& payload, std::uint64_t* seq,
                              std::vector<CheckpointSlot>* slots) {
  if (payload.size() < 12) return false;
  *seq = wal_detail::get<std::uint64_t>(payload.data());
  const auto n_slots = wal_detail::get<std::uint32_t>(payload.data() + 8);
  std::size_t off = 12;
  slots->clear();
  for (std::uint32_t i = 0; i < n_slots; ++i) {
    if (payload.size() - off < 10) return false;
    CheckpointSlot s;
    s.slot = static_cast<StructureId>(
        wal_detail::get<std::uint8_t>(payload.data() + off));
    s.kind = static_cast<StructureKind>(
        wal_detail::get<std::uint8_t>(payload.data() + off + 1));
    const auto count = wal_detail::get<std::uint64_t>(payload.data() + off + 2);
    off += 10;
    if ((payload.size() - off) / 16 < count) return false;
    s.entries.reserve(count);
    for (std::uint64_t e = 0; e < count; ++e) {
      s.entries.emplace_back(
          wal_detail::get<std::int64_t>(payload.data() + off),
          wal_detail::get<std::int64_t>(payload.data() + off + 8));
      off += 16;
    }
    slots->push_back(std::move(s));
  }
  return off == payload.size();
}

namespace recovery_detail {

inline bool fail(RecoveryReport* r, RecoveryStatus status, std::string detail) {
  r->status = status;
  r->detail = std::move(detail);
  return false;
}

/// Load one checkpoint slot into its (empty) registered structure.
inline bool load_slot(const Targets& targets, const CheckpointSlot& s,
                      RecoveryReport* r) {
  if (s.slot >= targets.count || targets.slots[s.slot].ptr == nullptr ||
      targets.slots[s.slot].kind != s.kind) {
    return fail(r, RecoveryStatus::kSlotMismatch,
                "checkpoint slot " + std::to_string(s.slot) +
                    " does not match the registered structures");
  }
  switch (s.kind) {
    case StructureKind::kMap: {
      tx::OtbListMap* m = targets.map(s.slot);
      if (m->size_unsafe() != 0) {
        return fail(r, RecoveryStatus::kSlotMismatch,
                    "structures must be empty when a checkpoint exists");
      }
      for (const auto& [k, v] : s.entries) m->put_seq(k, v);
      break;
    }
    case StructureKind::kSet: {
      tx::OtbListSet* st = targets.set(s.slot);
      if (st->size_unsafe() != 0) {
        return fail(r, RecoveryStatus::kSlotMismatch,
                    "structures must be empty when a checkpoint exists");
      }
      for (const auto& [k, v] : s.entries) st->add_seq(k);
      break;
    }
    case StructureKind::kHeapPq: {
      tx::OtbHeapPQ* q = targets.heap_pq(s.slot);
      if (q->size_unsafe() != 0) {
        return fail(r, RecoveryStatus::kSlotMismatch,
                    "structures must be empty when a checkpoint exists");
      }
      for (const auto& [k, v] : s.entries) q->add_seq(k);
      break;
    }
    case StructureKind::kSlPq: {
      tx::OtbSkipListPQ* q = targets.sl_pq(s.slot);
      if (q->size_unsafe() != 0) {
        return fail(r, RecoveryStatus::kSlotMismatch,
                    "structures must be empty when a checkpoint exists");
      }
      for (const auto& [k, v] : s.entries) q->add_seq(k);
      break;
    }
  }
  return true;
}

/// Replay one commit record as one transaction, cross-checking every
/// logged conditional outcome.  Returns false (with *r set) on mismatch.
inline bool replay_record(const Targets& targets, const WalRecord& rec,
                          RecoveryReport* r) {
  bool mismatch = false;
  std::string what;
  tx::atomically([&](tx::Transaction& t) {
    mismatch = false;
    for (const WalOp& op : rec.ops) {
      Step probe;
      probe.structure = op.slot;
      probe.verb = op.verb;
      if (!targets.valid_step(probe)) {
        mismatch = true;
        what = "op addresses an invalid slot/verb";
        return;
      }
      std::int64_t popped = 0;
      bool took_effect = true;
      switch (op.verb) {
        case Verb::kPut:
          targets.map(op.slot)->put(t, op.key, op.value);
          break;
        case Verb::kErase:
          took_effect = targets.map(op.slot)->erase(t, op.key);
          break;
        case Verb::kAdd:
          took_effect = targets.set(op.slot)->add(t, op.key);
          break;
        case Verb::kRemove:
          took_effect = targets.set(op.slot)->remove(t, op.key);
          break;
        case Verb::kPush:
          if (targets.slots[op.slot].kind == StructureKind::kHeapPq) {
            targets.heap_pq(op.slot)->add(t, op.key);
          } else {
            took_effect = targets.sl_pq(op.slot)->add(t, op.key);
          }
          break;
        case Verb::kPopMin:
          took_effect =
              targets.slots[op.slot].kind == StructureKind::kHeapPq
                  ? targets.heap_pq(op.slot)->remove_min(t, &popped)
                  : targets.sl_pq(op.slot)->remove_min(t, &popped);
          took_effect = took_effect && popped == op.key;
          break;
        default:
          // Reads (kGet/kContains/kRange/kMin) are never logged.
          mismatch = true;
          what = "read verb in the log";
          return;
      }
      if (!took_effect) {
        mismatch = true;
        // Name the op: the CI debris artifact plus this line is enough to
        // locate the record with a log dump and trace the key's history.
        what = "logged op " + std::to_string(static_cast<unsigned>(op.verb)) +
               "(slot " + std::to_string(static_cast<unsigned>(op.slot)) +
               ", key " + std::to_string(op.key) + ") did not reproduce";
        return;
      }
    }
  });
  if (mismatch) {
    return fail(r, RecoveryStatus::kCorruptLog,
                "replay of seq " + std::to_string(rec.seq) + " failed: " + what);
  }
  return true;
}

}  // namespace recovery_detail

/// Rebuild the registered structures from the WAL directory: checkpoint (or
/// `seed_baseline` when none exists — the caller's deterministic pre-start
/// seeding, which must match the pre-crash run's), then the merged log
/// tail.  Never starts the service; run it on an idle Targets before
/// Service::start().  On success the report's last_seq is the value the
/// commit clock must resume from.
inline RecoveryReport recover_into(
    const std::string& dir, const Targets& targets,
    const std::function<void()>& seed_baseline = {}) {
  RecoveryReport r;

  // 0. Single-owner guard.  Recovering a directory a live service still
  //    owns would read its segments mid-append and mis-diagnose the moving
  //    state as corruption (a dependent record can land in one shard's file
  //    after another shard's file was already scanned).  flock is released
  //    by the kernel when the holder dies — SIGKILL included — so a crashed
  //    owner never blocks its own recovery.  A missing directory skips the
  //    lock: that is the fresh-start path below.
  struct DirLock {
    int fd = -1;
    ~DirLock() {
      if (fd >= 0) ::close(fd);
    }
  } dir_lock;
  struct stat dir_st{};
  if (::stat(dir.c_str(), &dir_st) == 0) {
    std::string lock_err;
    dir_lock.fd = lock_wal_dir(dir, &lock_err);
    if (dir_lock.fd < 0) {
      recovery_detail::fail(&r, RecoveryStatus::kIoError, lock_err);
      return r;
    }
  }

  // 1. Manifest + checkpoint, or baseline.
  std::uint64_t ckpt_seq = 0;
  std::string ckpt_name;
  bool manifest_corrupt = false;
  const bool have_manifest =
      read_manifest(dir, &ckpt_seq, &ckpt_name, &manifest_corrupt);
  if (manifest_corrupt) {
    recovery_detail::fail(&r, RecoveryStatus::kCorruptCheckpoint,
                          "manifest fails its CRC/structure check");
    return r;
  }
  if (have_manifest) {
    std::string file, payload;
    std::uint64_t file_seq = 0;
    std::vector<CheckpointSlot> slots;
    if (!recovery_detail::read_file(dir + "/" + ckpt_name, &file)) {
      recovery_detail::fail(&r, RecoveryStatus::kCorruptCheckpoint,
                            "manifest names a missing snapshot " + ckpt_name);
      return r;
    }
    if (!recovery_detail::unframe(file, &payload) ||
        !decode_checkpoint(payload, &file_seq, &slots) || file_seq != ckpt_seq) {
      recovery_detail::fail(&r, RecoveryStatus::kCorruptCheckpoint,
                            "snapshot " + ckpt_name + " fails its CRC/structure check");
      return r;
    }
    for (const CheckpointSlot& s : slots) {
      if (!recovery_detail::load_slot(targets, s, &r)) return r;
    }
    r.checkpoint_seq = ckpt_seq;
  } else if (seed_baseline) {
    seed_baseline();
  }

  // 2. Collect every segment, per shard in segment order.
  struct Seg {
    unsigned shard;
    std::uint64_t number;
    std::string path;
  };
  std::vector<Seg> segs;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* e = ::readdir(d)) {
      unsigned shard;
      std::uint64_t number;
      if (parse_wal_segment_name(e->d_name, &shard, &number)) {
        segs.push_back(Seg{shard, number, dir + "/" + e->d_name});
      }
    }
    ::closedir(d);
  } else if (!have_manifest) {
    r.status = RecoveryStatus::kNoState;  // no directory at all: fresh start
    return r;
  }
  std::sort(segs.begin(), segs.end(), [](const Seg& a, const Seg& b) {
    return a.shard != b.shard ? a.shard < b.shard : a.number < b.number;
  });

  // 3. Scan.  Damage is a tolerable torn tail only in a shard's FINAL
  //    segment with nothing valid after it (rotation fsyncs a segment
  //    before retiring it, so completed segments are durable-complete).
  std::vector<WalRecord> merged;
  std::uint64_t prev_shard_seq = 0;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const Seg& seg = segs[i];
    const bool shard_final =
        i + 1 == segs.size() || segs[i + 1].shard != seg.shard;
    if (i == 0 || segs[i - 1].shard != seg.shard) prev_shard_seq = 0;
    std::string buf;
    if (!recovery_detail::read_file(seg.path, &buf)) {
      recovery_detail::fail(&r, RecoveryStatus::kIoError,
                            "cannot read " + seg.path);
      return r;
    }
    WalScan scan = scan_wal_buffer(buf);
    r.segments_scanned += 1;
    if (!scan.clean) {
      if (!shard_final || scan.valid_after_damage) {
        recovery_detail::fail(&r, RecoveryStatus::kCorruptLog,
                              "mid-log damage in " + seg.path);
        return r;
      }
      if (::truncate(seg.path.c_str(),
                     static_cast<off_t>(scan.tail_offset)) != 0) {
        recovery_detail::fail(&r, RecoveryStatus::kIoError,
                              "cannot truncate torn tail of " + seg.path);
        return r;
      }
      r.truncated_tail = true;
    }
    for (WalRecord& rec : scan.records) {
      // One worker appends each shard, so stamps are strictly increasing
      // within it; disorder means the file was tampered with or mis-merged.
      if (rec.seq <= prev_shard_seq) {
        recovery_detail::fail(&r, RecoveryStatus::kCorruptLog,
                              "non-monotone commit stamps in " + seg.path);
        return r;
      }
      prev_shard_seq = rec.seq;
      if (rec.seq > r.checkpoint_seq) merged.push_back(std::move(rec));
    }
  }
  if (!have_manifest && merged.empty() && !r.truncated_tail) {
    r.status = RecoveryStatus::kNoState;
    return r;
  }

  // 4. Merge by commit stamp (serialization order across shards) and replay.
  std::sort(merged.begin(), merged.end(),
            [](const WalRecord& a, const WalRecord& b) { return a.seq < b.seq; });
  r.last_seq = r.checkpoint_seq;
  for (const WalRecord& rec : merged) {
    if (rec.seq == r.last_seq && r.last_seq != 0) {
      recovery_detail::fail(&r, RecoveryStatus::kCorruptLog,
                            "duplicate commit stamp " + std::to_string(rec.seq));
      return r;
    }
    if (!recovery_detail::replay_record(targets, rec, &r)) return r;
    r.last_seq = rec.seq;
    r.records_replayed += 1;
    r.ops_replayed += rec.ops.size();
  }
  r.status = RecoveryStatus::kOk;
  return r;
}

/// Delete WAL segments and snapshots made obsolete by the checkpoint whose
/// manifest is already durable: segments numbered below `live_segment[s]`
/// for each shard, and any snapshot other than `keep_ckpt`.  Best-effort —
/// a leftover file is re-filtered by sequence on the next recovery.
inline void prune_obsolete(const std::string& dir,
                           const std::vector<std::uint64_t>& live_segment,
                           const std::string& keep_ckpt) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  std::vector<std::string> doomed;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    unsigned shard;
    std::uint64_t number;
    if (parse_wal_segment_name(name, &shard, &number)) {
      if (shard < live_segment.size() && number < live_segment[shard]) {
        doomed.push_back(name);
      }
    } else if (name.size() > 5 && name.compare(0, 5, "ckpt-") == 0 &&
               name != keep_ckpt) {
      doomed.push_back(name);
    }
  }
  ::closedir(d);
  for (const std::string& name : doomed) {
    ::unlink((dir + "/" + name).c_str());
  }
}

}  // namespace otb::service
