// Realistic multi-structure scenarios over the service plane's script API.
//
// Each scenario owns a small fleet of heterogeneous OTB structures,
// registers them in a `Targets` table, and exposes its domain operations as
// `Request` script builders — the whole point being that every operation
// which spans structures is ONE atomic boosted transaction (PAPER.md §1's
// composability pitch made concrete).  Examples, the load bench and the
// tier-2 stress drivers all build scripts through these helpers so the
// three layers exercise byte-identical requests.
//
//   JobScheduler  — skip-list PQ of ready jobs + lease map.  claim() pops
//                   the most urgent job and leases it in one transaction
//                   (result binding: the put's key comes from the pop);
//                   release() returns a lease to the ready queue.  The
//                   cross-structure invariant: a job is NEVER in both the
//                   free queue and the lease map.
//   SessionStore  — session map + TTL map sharing the key space.  create()
//                   installs the session and its TTL entry atomically;
//                   expire() removes both, guarded so only one sweeper
//                   wins.  Invariant: keys(sessions) == keys(ttl) at every
//                   quiescent point, and within any script the per-step
//                   results agree (both present or both absent).
//   OrderBook     — ask PQ + bid PQ (prices negated so min == best bid) +
//                   order map.  place_ask()/place_bid() insert the resting
//                   order and its book entry atomically; match() crosses
//                   the best ask against the best bid with `expect` guards,
//                   so a match commits only against the exact pair of
//                   orders the caller observed — the optimistic-CAS shape
//                   of a real matching engine.  Invariant: the order map is
//                   exactly the union of the two queues.
#pragma once

#include <cstdint>
#include <vector>

#include "otb/otb_list_map.h"
#include "otb/otb_skiplist_pq.h"
#include "otb/runtime.h"
#include "service/request.h"
#include "service/service.h"

namespace otb::service::scenarios {

/// Drain a skip-list PQ into a sorted vector (sequential, post-stress
/// audits only — the PQ has no snapshot accessor by design).
inline std::vector<std::int64_t> drain_pq_unsafe(tx::OtbSkipListPQ& pq) {
  std::vector<std::int64_t> out;
  tx::atomically([&](tx::Transaction& t) {
    out.clear();  // the attempt may be a retry
    std::int64_t k = 0;
    while (pq.remove_min(t, &k)) out.push_back(k);
  });
  return out;
}

// ---- job scheduler ---------------------------------------------------------

class JobScheduler {
 public:
  JobScheduler() {
    free_id_ = targets_.add_sl_pq(&free_);
    lease_id_ = targets_.add_map(&leases_);
  }

  Targets& targets() { return targets_; }
  StructureId free_id() const { return free_id_; }
  StructureId lease_id() const { return lease_id_; }

  /// Seed a ready job (before the service starts).
  bool seed_job(std::int64_t job) { return free_.add_seq(job); }

  /// Claim the most urgent ready job for `worker`: atomically pop the free
  /// queue's minimum and lease THAT job (binding: the put's key is step
  /// 0's result).  Guard: an empty queue aborts the script — nothing is
  /// leased.  On kOk with ok(): value() == put value, step(0).value is the
  /// claimed job id.
  Request claim(std::int64_t worker) const {
    return Request{pq_pop_min(free_id_).require(),
                   map_put(0, worker, lease_id_).key_from_step(0)};
  }

  /// Return a leased job to the ready queue.  Guard: releasing a job that
  /// is not leased aborts (ok() false, nothing pushed) — so claim/release
  /// can never duplicate a job into both structures.
  Request release(std::int64_t job) const {
    return Request{map_erase(job, lease_id_).require(),
                   pq_push(job, free_id_)};
  }

  /// Who holds `job`?  (Single-op read.)
  Request holder(std::int64_t job) const {
    return Request{map_get(job, lease_id_)};
  }

  tx::OtbSkipListPQ& free_queue() { return free_; }
  tx::OtbListMap& leases() { return leases_; }

 private:
  tx::OtbSkipListPQ free_;
  tx::OtbListMap leases_;
  Targets targets_;
  StructureId free_id_ = 0;
  StructureId lease_id_ = 0;
};

// ---- session store ---------------------------------------------------------

class SessionStore {
 public:
  SessionStore() {
    session_id_ = targets_.add_map(&sessions_);
    ttl_id_ = targets_.add_map(&ttl_);
  }

  Targets& targets() { return targets_; }
  StructureId session_id() const { return session_id_; }
  StructureId ttl_id() const { return ttl_id_; }

  /// Install a session and its TTL-index entry in one transaction.  The
  /// TTL index is keyed by expiry RANK (a time-ordered key that must be
  /// unique per live session — drivers use `rank = bucket * stride + sid`)
  /// and maps back to the session id, so expiry sweeps are key-range scans
  /// over time.  Both puts are insert-or-assign; their oks agree iff the
  /// invariant held before the script — the stress driver asserts exactly
  /// that.
  Request create(std::int64_t sid, std::int64_t data,
                 std::int64_t expiry_rank) const {
    return Request{map_put(sid, data, session_id_),
                   map_put(expiry_rank, sid, ttl_id_)};
  }

  /// Atomically expire one session found by a scan.  The TTL erase is the
  /// guard: when two sweepers race on the same entry, exactly one wins it,
  /// and the loser's script rolls back without touching the session map
  /// (which may already hold a re-created session under a new rank).
  Request expire(std::int64_t expiry_rank, std::int64_t sid) const {
    return Request{map_erase(expiry_rank, ttl_id_).require(),
                   map_erase(sid, session_id_)};
  }

  /// TTL entries with expiry rank inside [lo, hi] — the sweep's read side;
  /// range pairs are (rank, sid).
  Request scan_ttl(std::int64_t lo, std::int64_t hi) const {
    return Request{map_range(lo, hi, ttl_id_)};
  }

  Request lookup(std::int64_t sid) const {
    return Request{map_get(sid, session_id_)};
  }

  tx::OtbListMap& sessions() { return sessions_; }
  tx::OtbListMap& ttl_index() { return ttl_; }

 private:
  tx::OtbListMap sessions_;
  tx::OtbListMap ttl_;
  Targets targets_;
  StructureId session_id_ = 0;
  StructureId ttl_id_ = 0;
};

// ---- order book ------------------------------------------------------------

class OrderBook {
 public:
  OrderBook() {
    ask_id_ = targets_.add_sl_pq(&asks_);
    bid_id_ = targets_.add_sl_pq(&bids_);
    order_id_ = targets_.add_map(&orders_);
  }

  Targets& targets() { return targets_; }
  StructureId ask_id() const { return ask_id_; }
  StructureId bid_id() const { return bid_id_; }
  StructureId order_id() const { return order_id_; }

  /// Rest an ask at `price` (> 0): queue entry + book entry, atomically.
  /// The push is the guard — a duplicate price aborts and the book entry
  /// is never written.
  Request place_ask(std::int64_t price, std::int64_t qty) const {
    return Request{pq_push(price, ask_id_).require(),
                   map_put(price, qty, order_id_)};
  }

  /// Rest a bid at `price` (> 0).  Bids live under their negated price, so
  /// the bid queue's minimum is the BEST (highest) bid and the order map's
  /// negative keys can never collide with ask keys.
  Request place_bid(std::int64_t price, std::int64_t qty) const {
    return Request{pq_push(-price, bid_id_).require(),
                   map_put(-price, qty, order_id_)};
  }

  /// Best ask / best bid (negated), single-op reads.
  Request best_ask() const { return Request{pq_min(ask_id_)}; }
  Request best_bid() const { return Request{pq_min(bid_id_)}; }

  /// Cross `ask_price` against `bid_price`: pop both queue minima with
  /// `expect` guards — the script commits only if the best ask and best
  /// bid are still exactly the pair the caller observed — then retire both
  /// book entries.  Any drift (someone else matched first, a better order
  /// arrived) aborts the whole script: no half-matched state, no popped
  /// order that was not the one priced against.
  Request match(std::int64_t ask_price, std::int64_t bid_price) const {
    return Request{pq_pop_min(ask_id_).expecting(ask_price),
                   pq_pop_min(bid_id_).expecting(-bid_price),
                   map_erase(ask_price, order_id_).require(),
                   map_erase(-bid_price, order_id_).require()};
  }

  tx::OtbSkipListPQ& asks() { return asks_; }
  tx::OtbSkipListPQ& bids() { return bids_; }
  tx::OtbListMap& orders() { return orders_; }

 private:
  tx::OtbSkipListPQ asks_;
  tx::OtbSkipListPQ bids_;
  tx::OtbListMap orders_;
  Targets targets_;
  StructureId ask_id_ = 0;
  StructureId bid_id_ = 0;
  StructureId order_id_ = 0;
};

}  // namespace otb::service::scenarios
