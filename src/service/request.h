// Typed request/response vocabulary of the transactional service plane.
//
// A client submits a `Request` — an atomic *script* of one or more typed
// `Step`s over the service's registered OTB structures — and receives a
// `ResponseFuture`.  Every step names its target by `StructureId` (the
// slot the structure was registered under, see `service::Targets`) plus a
// `Verb`; the whole script executes inside ONE boosted transaction, so a
// pop from a priority queue and a put into a map either both happen or
// neither does.  Single-step requests are the inline fast path: the step
// list lives in the request itself (SmallVec inline storage), so the PR 5
// one-op submit path allocates and copies exactly what it used to.
//
// Script features (specified in docs/SERVICE.md):
//   * result binding — a step may take its key or value from the result of
//     an earlier step (`key_from`/`value_from`), e.g. "pop the most urgent
//     job, then lease THAT job";
//   * guards — a `required` step whose outcome is false aborts the script:
//     the transaction's effects are rolled back and the request completes
//     with per-step results describing where it stopped (atomically
//     nothing happened);
//   * expectations — `expect` turns a step into a compare: the step's
//     result value must match or the script aborts (CAS-style conditional
//     scripts, e.g. "pop the ask I matched against, not whatever became
//     the minimum since").
//
// The service completes the underlying `Pending` cell exactly once with a
// terminal `SvcStatus`; the future is the client's read-only view and can
// be waited on (C++20 atomic wait — futex-backed, no spinning client).
//
// Ownership: a Pending cell is shared by exactly two parties — the future
// held by the client and the service's queue slot — via an intrusive
// refcount, so fire-and-forget clients may drop their future immediately
// and loaded-service shutdown can still complete every cell ("no lost
// completions").
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <utility>
#include <vector>

#include "common/platform.h"
#include "common/small_vec.h"

namespace otb::service {

/// What kind of structure a `Targets` slot holds — determines which verbs
/// a step against that slot may use.
enum class StructureKind : std::uint8_t {
  kMap = 0,   // OtbListMap: get/put/erase/contains/range
  kSet,       // OtbListSet: add/remove/contains
  kHeapPq,    // OtbHeapPQ: push (duplicates ok, never fails) / pop_min / min
  kSlPq,      // OtbSkipListPQ: push (unique keys) / pop_min / min
};

inline constexpr std::size_t kStructureKindCount = 4;

constexpr const char* to_string(StructureKind k) {
  // Exhaustive by construction: no default case, so -Werror=switch
  // (OTB_WERROR) breaks the build when an enumerator is added without a
  // string; the post-switch "?" is reachable only for out-of-range values
  // decoded off the wire.  test_service.cpp walks [0, kStructureKindCount)
  // and asserts every name is distinct and never "?".
  switch (k) {
    case StructureKind::kMap: return "map";
    case StructureKind::kSet: return "set";
    case StructureKind::kHeapPq: return "heap_pq";
    case StructureKind::kSlPq: return "sl_pq";
  }
  return "?";
}

/// One operation verb.  Which verbs are legal depends on the target slot's
/// StructureKind (see `Targets::valid_step`); an incompatible pair fails
/// the whole request at admission (kFailed), it never reaches a worker.
enum class Verb : std::uint8_t {
  kGet = 0,   // map: ok = present, result value = mapped value
  kPut,       // map: ok = key was absent (insert-or-assign), result = value
  kErase,     // map: ok = key was present
  kContains,  // map/set: ok = present
  kRange,     // map: key = lo, value = hi (inclusive); pairs append to
              // Pending::range_out, result value = pair count of THIS step
  kAdd,       // set: ok = key was absent
  kRemove,    // set: ok = key was present
  kPush,      // pq: insert key; heap PQ always succeeds, skip-list PQ is
              // unique-keys (ok = was absent); result value = key
  kPopMin,    // pq: ok = non-empty, result value = removed minimum
  kMin,       // pq: ok = non-empty, result value = current minimum
};

inline constexpr std::size_t kVerbCount = 10;

constexpr const char* to_string(Verb v) {
  switch (v) {
    case Verb::kGet: return "get";
    case Verb::kPut: return "put";
    case Verb::kErase: return "erase";
    case Verb::kContains: return "contains";
    case Verb::kRange: return "range";
    case Verb::kAdd: return "add";
    case Verb::kRemove: return "remove";
    case Verb::kPush: return "push";
    case Verb::kPopMin: return "pop_min";
    case Verb::kMin: return "min";
  }
  return "?";
}

/// Slot index into the service's structure table (`Targets`).  Plain
/// integer rather than an enum: services register their own structures at
/// runtime, the vocabulary cannot know their names.
using StructureId = std::uint8_t;

/// Terminal request states (kPending is the only non-terminal one).
enum class SvcStatus : std::uint8_t {
  kPending = 0,
  kOk,          // script executed atomically; semantic outcome in ok/steps
  kOverloaded,  // rejected at admission (queue above high-water, or stopped)
  kExpired,     // deadline passed before a transaction slot ran it
  kFailed,      // malformed script: unregistered slot, incompatible verb,
                // bad binding index, or too many steps (rejected at submit)
};

inline constexpr std::size_t kSvcStatusCount = 5;

constexpr const char* to_string(SvcStatus s) {
  switch (s) {
    case SvcStatus::kPending: return "pending";
    case SvcStatus::kOk: return "ok";
    case SvcStatus::kOverloaded: return "overloaded";
    case SvcStatus::kExpired: return "expired";
    case SvcStatus::kFailed: return "failed";
  }
  return "?";
}

/// One typed operation inside a script.  Trivially copyable by design —
/// the step list is a SmallVec and the wire codec memcpys fields.
struct Step {
  StructureId structure = 0;
  Verb verb = Verb::kGet;
  // Result bindings: take key/value from the result value of an EARLIER
  // step (index < this step's position) instead of the literal fields.
  // -1 = use the literal.
  std::int8_t key_from = -1;
  std::int8_t value_from = -1;
  bool required = false;    // guard: script aborts if this step's ok is false
  bool has_expect = false;  // guard: script aborts unless result == expect
  std::int64_t key = 0;
  std::int64_t value = 0;   // put value / range hi bound
  std::int64_t expect = 0;

  // Fluent modifiers so factory-built steps read as a sentence:
  //   sl_pop_min(free).require(), map_put(0, worker, leases).key_from_step(0)
  Step& require() {
    required = true;
    return *this;
  }
  Step& expecting(std::int64_t v) {
    has_expect = true;
    expect = v;
    return *this;
  }
  Step& key_from_step(std::int8_t i) {
    key_from = i;
    return *this;
  }
  Step& value_from_step(std::int8_t i) {
    value_from = i;
    return *this;
  }
};

// Step factories.  The default slot arguments match `Targets::standard`'s
// canonical layout (map=0, set=1, heap=2, skip-list PQ=3); services with
// bespoke registrations pass their own slot ids.
inline Step map_get(std::int64_t key, StructureId sid = 0) {
  return Step{sid, Verb::kGet, -1, -1, false, false, key, 0, 0};
}
inline Step map_put(std::int64_t key, std::int64_t value, StructureId sid = 0) {
  return Step{sid, Verb::kPut, -1, -1, false, false, key, value, 0};
}
inline Step map_erase(std::int64_t key, StructureId sid = 0) {
  return Step{sid, Verb::kErase, -1, -1, false, false, key, 0, 0};
}
inline Step map_contains(std::int64_t key, StructureId sid = 0) {
  return Step{sid, Verb::kContains, -1, -1, false, false, key, 0, 0};
}
inline Step map_range(std::int64_t lo, std::int64_t hi, StructureId sid = 0) {
  return Step{sid, Verb::kRange, -1, -1, false, false, lo, hi, 0};
}
inline Step set_add(std::int64_t key, StructureId sid = 1) {
  return Step{sid, Verb::kAdd, -1, -1, false, false, key, 0, 0};
}
inline Step set_remove(std::int64_t key, StructureId sid = 1) {
  return Step{sid, Verb::kRemove, -1, -1, false, false, key, 0, 0};
}
inline Step set_contains(std::int64_t key, StructureId sid = 1) {
  return Step{sid, Verb::kContains, -1, -1, false, false, key, 0, 0};
}
inline Step pq_push(std::int64_t key, StructureId sid) {
  return Step{sid, Verb::kPush, -1, -1, false, false, key, 0, 0};
}
inline Step pq_pop_min(StructureId sid) {
  return Step{sid, Verb::kPopMin, -1, -1, false, false, 0, 0, 0};
}
inline Step pq_min(StructureId sid) {
  return Step{sid, Verb::kMin, -1, -1, false, false, 0, 0, 0};
}
inline Step heap_push(std::int64_t key) { return pq_push(key, 2); }
inline Step heap_pop_min() { return pq_pop_min(2); }
inline Step sl_push(std::int64_t key) { return pq_push(key, 3); }
inline Step sl_pop_min() { return pq_pop_min(3); }

/// Inline step capacity: scripts up to this length never heap-allocate.
/// Sized for the scenario suite's largest script (order-book cross-match,
/// 4 steps) — single-op requests waste three slots, which is still smaller
/// than the PR 5 Pending's range vector was.
inline constexpr std::size_t kInlineSteps = 4;

/// Hard upper bound on script length, compile-time.  The runtime limit is
/// `ServiceConfig::max_steps` (knob OTB_SVC_MAX_STEPS, default 16) and may
/// be set anywhere in [1, kMaxStepsLimit].
inline constexpr std::size_t kMaxStepsLimit = 64;

/// An atomic script of typed steps plus the request deadline.
struct Request {
  SmallVec<Step, kInlineSteps> steps;
  std::uint64_t deadline_ns = 0;  // absolute (now_ns clock); 0 = no deadline
  // Completion notification: invoked by `complete()` from whichever thread
  // completes the request, after the terminal status is published and
  // waiters are woken.  The hook must not block — the net adapter uses it
  // to flag the connection dirty and poke an eventfd so responses flush
  // without a polling tick.  Null for ordinary futures-only clients.
  void (*on_complete)(void*) = nullptr;
  void* on_complete_arg = nullptr;

  Request() = default;
  /// Single-op convenience: `svc.submit(map_get(7))`.
  Request(Step s) { steps.push_back(s); }  // NOLINT(google-explicit-constructor)
  Request(std::initializer_list<Step> script) {
    for (const Step& s : script) steps.push_back(s);
  }

  /// Fluent script building: `Request(pop).then(put)`.
  Request& then(Step s) {
    steps.push_back(s);
    return *this;
  }
  Request& with_deadline(std::uint64_t ns) {
    deadline_ns = ns;
    return *this;
  }
};

/// Per-step outcome.  `ran` distinguishes "executed and reported false"
/// from "never reached because an earlier guard aborted the script".
struct StepResult {
  bool ran = false;
  bool ok = false;
  std::int64_t value = 0;
};

/// One in-flight request: the script itself plus the completion cell the
/// worker fills.  Completed exactly once; `status` is the publication flag
/// (release store + notify), so readers that observed a terminal status may
/// read every other field without further synchronisation.
struct Pending {
  Request req;
  std::uint64_t enqueue_ns = 0;
  std::uint64_t complete_ns = 0;

  // Results (valid once status is terminal).  `ok` aggregates the script:
  // true iff every step ran and reported true.  `value` is the result
  // value of the last step that ran (for single-op requests: the op's
  // result, exactly as before).  `results` has one entry per step.
  bool ok = false;
  std::int64_t value = 0;
  SmallVec<StepResult, kInlineSteps> results;
  // Range output, shared by every kRange step of the script in step order;
  // each range step's result value is its own pair count, so a client can
  // segment the vector (docs/SERVICE.md "Range results").
  std::vector<std::pair<std::int64_t, std::int64_t>> range_out;

  std::atomic<SvcStatus> status{SvcStatus::kPending};
  std::atomic<int> refs{2};  // client future + service queue slot

  void release() {
    if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }

  // Thread-local freelist: one cell is allocated and freed per request, on
  // the submit path's critical path.  The last reference is typically
  // dropped by the same client thread that allocated the cell (the service
  // completes first, the client's future destructor frees), so a plain
  // thread-local stack recycles cells without synchronisation.  Cross-
  // thread frees just seed the freeing thread's list; the cap bounds
  // memory when alloc/free threads are persistently imbalanced.
  static void* operator new(std::size_t size) {
    FreeList& fl = free_list();
    if (fl.head != nullptr) {
      void* p = fl.head;
      fl.head = *static_cast<void**>(p);
      fl.size -= 1;
      return p;
    }
    return ::operator new(size);
  }

  static void operator delete(void* p) noexcept {
    FreeList& fl = free_list();
    if (fl.size < kFreeListCap) {
      *static_cast<void**>(p) = fl.head;
      fl.head = p;
      fl.size += 1;
      return;
    }
    ::operator delete(p);
  }

 private:
  static constexpr std::size_t kFreeListCap = 4096;
  struct FreeList {
    void* head = nullptr;
    std::size_t size = 0;
    ~FreeList() {
      while (head != nullptr) {
        void* next = *static_cast<void**>(head);
        ::operator delete(head);
        head = next;
      }
    }
  };
  static FreeList& free_list() {
    static thread_local FreeList fl;
    return fl;
  }
};

/// Client-side handle.  Movable, not copyable; blocks on wait().
class ResponseFuture {
 public:
  ResponseFuture() = default;
  explicit ResponseFuture(Pending* p) : p_(p) {}
  ResponseFuture(ResponseFuture&& o) noexcept : p_(std::exchange(o.p_, nullptr)) {}
  ResponseFuture& operator=(ResponseFuture&& o) noexcept {
    if (this != &o) {
      if (p_ != nullptr) p_->release();
      p_ = std::exchange(o.p_, nullptr);
    }
    return *this;
  }
  ResponseFuture(const ResponseFuture&) = delete;
  ResponseFuture& operator=(const ResponseFuture&) = delete;
  ~ResponseFuture() {
    if (p_ != nullptr) p_->release();
  }

  bool valid() const { return p_ != nullptr; }

  /// Current status (terminal statuses are stable).
  SvcStatus status() const { return p_->status.load(std::memory_order_acquire); }
  bool done() const { return status() != SvcStatus::kPending; }

  /// Block until completed (futex wait, no busy spin).
  SvcStatus wait() const {
    SvcStatus s = p_->status.load(std::memory_order_acquire);
    while (s == SvcStatus::kPending) {
      p_->status.wait(SvcStatus::kPending, std::memory_order_acquire);
      s = p_->status.load(std::memory_order_acquire);
    }
    return s;
  }

  // Results — call only after wait()/done() reported a terminal status.
  bool ok() const { return p_->ok; }
  std::int64_t value() const { return p_->value; }
  /// Per-step outcomes (size == the script's step count once kOk/kFailed).
  std::size_t step_count() const { return p_->results.size(); }
  const StepResult& step(std::size_t i) const { return p_->results[i]; }
  const std::vector<std::pair<std::int64_t, std::int64_t>>& range() const {
    return p_->range_out;
  }
  /// Enqueue-to-completion latency of this request.
  std::uint64_t latency_ns() const { return p_->complete_ns - p_->enqueue_ns; }

 private:
  Pending* p_ = nullptr;
};

/// Complete `p` exactly once: fill results before the releasing status
/// store, wake any waiter, then drop the completing side's reference.
inline void complete(Pending* p, SvcStatus s) {
  p->complete_ns = now_ns();
  void (*hook)(void*) = p->req.on_complete;
  void* hook_arg = p->req.on_complete_arg;
  p->status.store(s, std::memory_order_release);
  p->status.notify_all();
  // The hook runs before release(): the completing side's reference is the
  // only thing keeping `p` alive if the client already dropped its future.
  if (hook != nullptr) hook(hook_arg);
  p->release();
}

}  // namespace otb::service
