// Typed request/response vocabulary of the transactional service plane.
//
// A client submits a `Request` naming one operation over one of the
// service's registered OTB structures (map get/put/erase/range, set
// add/remove/contains, PQ push/pop) and receives a `ResponseFuture`.  The
// service completes the underlying `Pending` cell exactly once with a
// terminal `SvcStatus`; the future is the client's read-only view and can
// be waited on (C++20 atomic wait — futex-backed, no spinning client).
//
// Ownership: a Pending cell is shared by exactly two parties — the future
// held by the client and the service's queue slot — via an intrusive
// refcount, so fire-and-forget clients may drop their future immediately
// and loaded-service shutdown can still complete every cell ("no lost
// completions").
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/platform.h"

namespace otb::service {

/// Operation + target structure, one enumerator per (structure, op) pair.
enum class Op : std::uint8_t {
  kMapGet = 0,
  kMapPut,
  kMapErase,
  kMapRange,    // key = lo, value = hi; pairs come back in Pending::range_out
  kSetAdd,
  kSetRemove,
  kSetContains,
  kHeapPush,    // binary-heap PQ (duplicates allowed; always succeeds)
  kHeapPopMin,
  kSlPush,      // skip-list PQ (unique keys)
  kSlPopMin,
};

inline const char* to_string(Op op) {
  switch (op) {
    case Op::kMapGet: return "map_get";
    case Op::kMapPut: return "map_put";
    case Op::kMapErase: return "map_erase";
    case Op::kMapRange: return "map_range";
    case Op::kSetAdd: return "set_add";
    case Op::kSetRemove: return "set_remove";
    case Op::kSetContains: return "set_contains";
    case Op::kHeapPush: return "heap_push";
    case Op::kHeapPopMin: return "heap_pop_min";
    case Op::kSlPush: return "sl_push";
    case Op::kSlPopMin: return "sl_pop_min";
  }
  return "?";
}

/// Terminal request states (kPending is the only non-terminal one).
enum class SvcStatus : std::uint8_t {
  kPending = 0,
  kOk,          // executed in a committed transaction; see ok/value
  kOverloaded,  // rejected at admission (queue above high-water, or stopped)
  kExpired,     // deadline passed before a transaction slot ran it
  kFailed,      // no structure registered for the op
};

inline const char* to_string(SvcStatus s) {
  switch (s) {
    case SvcStatus::kPending: return "pending";
    case SvcStatus::kOk: return "ok";
    case SvcStatus::kOverloaded: return "overloaded";
    case SvcStatus::kExpired: return "expired";
    case SvcStatus::kFailed: return "failed";
  }
  return "?";
}

struct Request {
  Op op = Op::kMapGet;
  std::int64_t key = 0;
  std::int64_t value = 0;       // put value / range hi bound
  std::uint64_t deadline_ns = 0;  // absolute (now_ns clock); 0 = no deadline
};

/// One in-flight request: the request itself plus the completion cell the
/// worker fills.  Completed exactly once; `status` is the publication flag
/// (release store + notify), so readers that observed a terminal status may
/// read every other field without further synchronisation.
struct Pending {
  Request req;
  std::uint64_t enqueue_ns = 0;
  std::uint64_t complete_ns = 0;

  // Results (valid once status is terminal).
  bool ok = false;
  bool failed = false;  // op had no registered target structure
  std::int64_t value = 0;
  std::vector<std::pair<std::int64_t, std::int64_t>> range_out;

  std::atomic<SvcStatus> status{SvcStatus::kPending};
  std::atomic<int> refs{2};  // client future + service queue slot

  void release() {
    if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }

  // Thread-local freelist: one cell is allocated and freed per request, on
  // the submit path's critical path.  The last reference is typically
  // dropped by the same client thread that allocated the cell (the service
  // completes first, the client's future destructor frees), so a plain
  // thread-local stack recycles cells without synchronisation.  Cross-
  // thread frees just seed the freeing thread's list; the cap bounds
  // memory when alloc/free threads are persistently imbalanced.
  static void* operator new(std::size_t size) {
    FreeList& fl = free_list();
    if (fl.head != nullptr) {
      void* p = fl.head;
      fl.head = *static_cast<void**>(p);
      fl.size -= 1;
      return p;
    }
    return ::operator new(size);
  }

  static void operator delete(void* p) noexcept {
    FreeList& fl = free_list();
    if (fl.size < kFreeListCap) {
      *static_cast<void**>(p) = fl.head;
      fl.head = p;
      fl.size += 1;
      return;
    }
    ::operator delete(p);
  }

 private:
  static constexpr std::size_t kFreeListCap = 4096;
  struct FreeList {
    void* head = nullptr;
    std::size_t size = 0;
    ~FreeList() {
      while (head != nullptr) {
        void* next = *static_cast<void**>(head);
        ::operator delete(head);
        head = next;
      }
    }
  };
  static FreeList& free_list() {
    static thread_local FreeList fl;
    return fl;
  }
};

/// Client-side handle.  Movable, not copyable; blocks on wait().
class ResponseFuture {
 public:
  ResponseFuture() = default;
  explicit ResponseFuture(Pending* p) : p_(p) {}
  ResponseFuture(ResponseFuture&& o) noexcept : p_(std::exchange(o.p_, nullptr)) {}
  ResponseFuture& operator=(ResponseFuture&& o) noexcept {
    if (this != &o) {
      if (p_ != nullptr) p_->release();
      p_ = std::exchange(o.p_, nullptr);
    }
    return *this;
  }
  ResponseFuture(const ResponseFuture&) = delete;
  ResponseFuture& operator=(const ResponseFuture&) = delete;
  ~ResponseFuture() {
    if (p_ != nullptr) p_->release();
  }

  bool valid() const { return p_ != nullptr; }

  /// Current status (terminal statuses are stable).
  SvcStatus status() const { return p_->status.load(std::memory_order_acquire); }
  bool done() const { return status() != SvcStatus::kPending; }

  /// Block until completed (futex wait, no busy spin).
  SvcStatus wait() const {
    SvcStatus s = p_->status.load(std::memory_order_acquire);
    while (s == SvcStatus::kPending) {
      p_->status.wait(SvcStatus::kPending, std::memory_order_acquire);
      s = p_->status.load(std::memory_order_acquire);
    }
    return s;
  }

  // Results — call only after wait()/done() reported a terminal status.
  bool ok() const { return p_->ok; }
  std::int64_t value() const { return p_->value; }
  const std::vector<std::pair<std::int64_t, std::int64_t>>& range() const {
    return p_->range_out;
  }
  /// Enqueue-to-completion latency of this request.
  std::uint64_t latency_ns() const { return p_->complete_ns - p_->enqueue_ns; }

 private:
  Pending* p_ = nullptr;
};

/// Complete `p` exactly once: fill results before the releasing status
/// store, wake any waiter, then drop the completing side's reference.
inline void complete(Pending* p, SvcStatus s) {
  p->complete_ns = now_ns();
  p->status.store(s, std::memory_order_release);
  p->status.notify_all();
  p->release();
}

}  // namespace otb::service
