// Bounded MPSC ring buffers for the service plane's ingestion path.
//
// `RequestRing` is the classic sequence-numbered bounded queue (Vyukov):
// each cell carries a sequence counter that encodes whether it is free for
// the producer generation or full for the consumer generation, so producers
// synchronise only on a single fetch-add'd head and consumers (one per ring
// here) on a plain tail.  Push fails — it never blocks — when the ring is
// at `high_water`; admission control is the *caller's* decision to complete
// the request as Overloaded instead of waiting, which is what keeps
// enqueue-to-completion latency of admitted requests bounded under
// overload.
//
// `ShardedQueue` is one ring per worker with round-robin producer
// placement, plus a per-ring doorbell (`signal`) the consumer futex-waits
// on when its ring runs dry.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/platform.h"
#include "service/request.h"

namespace otb::service {

class RequestRing {
 public:
  /// `capacity` is rounded up to a power of two; `high_water` (0 = use
  /// capacity) is the admission limit: try_push fails once the ring holds
  /// that many undelivered requests.
  explicit RequestRing(std::size_t capacity, std::size_t high_water = 0) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::make_unique<Cell[]>(cap);
    mask_ = cap - 1;
    high_water_ = (high_water == 0 || high_water > cap) ? cap : high_water;
    for (std::size_t i = 0; i <= mask_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  /// Multi-producer push; false when at high-water (admission reject).
  bool try_push(Pending* p) {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      if (pos - tail_.load(std::memory_order_acquire) >= high_water_) {
        return false;
      }
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const std::int64_t diff =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.req = p;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // pos reloaded by the failed CAS; retry.
      } else if (diff < 0) {
        return false;  // a full generation behind: ring is full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer pop; nullptr when empty.
  Pending* try_pop() {
    const std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1) < 0) {
      return nullptr;  // producer has not published this cell yet
    }
    Pending* p = cell.req;
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    tail_.store(pos + 1, std::memory_order_release);
    return p;
  }

  /// Approximate occupancy (racy by design; metrics and admission only).
  std::size_t size() const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    return h >= t ? static_cast<std::size_t>(h - t) : 0;
  }

  std::size_t capacity() const { return mask_ + 1; }
  std::size_t high_water() const { return high_water_; }

 private:
  struct alignas(kCacheLine) Cell {
    std::atomic<std::uint64_t> seq{0};
    Pending* req = nullptr;
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  std::size_t high_water_ = 0;
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};
};

/// One ring per worker.  Producers place round-robin (cheap global counter;
/// per-request cost is one relaxed fetch-add) and ring a doorbell the
/// owning consumer sleeps on when dry.
class ShardedQueue {
 public:
  ShardedQueue(unsigned shards, std::size_t capacity_per_shard,
               std::size_t high_water_per_shard) {
    shards_.reserve(shards);
    for (unsigned i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(capacity_per_shard,
                                                high_water_per_shard));
    }
  }

  unsigned shard_count() const { return static_cast<unsigned>(shards_.size()); }

  /// Admit to some shard (single rotation; a full shard falls through to
  /// the next so one stalled worker does not reject the whole service).
  bool try_push(Pending* p) {
    const unsigned n = shard_count();
    const unsigned start =
        next_.fetch_add(1, std::memory_order_relaxed) % n;
    for (unsigned i = 0; i < n; ++i) {
      Shard& s = *shards_[(start + i) % n];
      if (s.ring.try_push(p)) {
        s.signal.fetch_add(1, std::memory_order_release);
        s.signal.notify_one();
        return true;
      }
    }
    return false;
  }

  Pending* try_pop(unsigned shard) { return shards_[shard]->ring.try_pop(); }

  /// Block shard `shard`'s consumer until its doorbell moves past `seen`.
  /// Returns the fresh doorbell value.
  std::uint32_t wait(unsigned shard, std::uint32_t seen) {
    shards_[shard]->signal.wait(seen, std::memory_order_acquire);
    return shards_[shard]->signal.load(std::memory_order_acquire);
  }

  std::uint32_t doorbell(unsigned shard) const {
    return shards_[shard]->signal.load(std::memory_order_acquire);
  }

  /// Wake every consumer (stop()/drain).
  void wake_all() {
    for (auto& s : shards_) {
      s->signal.fetch_add(1, std::memory_order_release);
      s->signal.notify_all();
    }
  }

  std::size_t shard_size(unsigned shard) const {
    return shards_[shard]->ring.size();
  }

  std::size_t total_size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s->ring.size();
    return n;
  }

 private:
  struct Shard {
    Shard(std::size_t cap, std::size_t hw) : ring(cap, hw) {}
    RequestRing ring;
    std::atomic<std::uint32_t> signal{0};
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint32_t> next_{0};
};

}  // namespace otb::service
