// Key-space sharding: `OTB_SVC_SHARDS` independent service planes behind
// one submit() front door.
//
// Each shard is a full Service — its own Targets (distinct structure
// instances), its own worker threads and queues, its own WAL directory —
// so shards share no transactional state at all: the partitioning is by
// key hash (`shard_of_key`, the splitmix64 finalizer mod the shard count),
// which scales with the *semantic* conflict granularity the paper argues
// for rather than any memory-level one — two scripts on different shards
// cannot conflict even in principle.
//
// Routing (docs/SERVICE.md "Network server & sharding"): a script routes
// to the shard owning its key set.  That owner exists only when every step
// carries a submit-time-known key hashing to the same shard, so the router
// FAILS CLOSED — completes the request `kFailed` without touching any
// shard — for:
//   * steps whose key is bound at runtime (`key_from` >= 0),
//   * keyless verbs (kPopMin / kMin — the minimum lives wherever it lives),
//   * range scans (kRange spans the whole key space by construction),
//   * scripts whose literal keys hash to different shards.
// Each rejection bumps `svc_cross_shard` in the "otb.service.router"
// domain; it deliberately does NOT touch any shard's svc_* ledger, so the
// per-shard identities (svc_enqueued == batch_size.total + svc_expired,
// svc_read_only == mv_snapshot_reads + mv_version_misses) keep holding per
// shard — and, the identities being linear, in aggregate across shards.
// With a single shard the router steps aside entirely (everything the
// service supports today is single-shard by definition, ranges and pops
// included), so `OTB_SVC_SHARDS=1` behaves byte-for-byte like a plain
// Service.
//
// Durability layout: with S > 1 each shard appends under
// `<wal_dir>/shard-<i>` (own manifest, segments, checkpoint, single-owner
// flock); recovery is per shard and composes trivially because no commit
// ever spans directories.  With S == 1 the directory layout is exactly the
// unsharded one — existing logs recover unchanged.
//
// Metrics: shard i reports through "otb.service.s<i>" when S > 1 (plain
// "otb.service" when S == 1), the router through "otb.service.router".
// `metrics_check --validate` checks every service domain individually and
// the aggregate sum.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#if defined(__linux__) || defined(__APPLE__)
#include <sys/stat.h>
#endif

#include "common/hash.h"
#include "metrics/registry.h"
#include "service/recovery.h"
#include "service/request.h"
#include "service/service.h"
#include "service/targets.h"

namespace otb::service {

/// Which shard owns a literal key.  Hash, not modulo-of-key: adjacent keys
/// spread across shards, so a contiguous hot range still parallelises.
inline unsigned shard_of_key(std::int64_t key, unsigned shards) {
  if (shards <= 1) return 0;
  return static_cast<unsigned>(mix64(static_cast<std::uint64_t>(key)) %
                               shards);
}

/// Shard count from the environment (docs/KNOBS.md): OTB_SVC_SHARDS,
/// default 1, clamped to [1, 64].
inline unsigned shards_from_env() {
  auto s = static_cast<unsigned>(detail::env_u64("OTB_SVC_SHARDS", 1));
  if (s == 0) s = 1;
  if (s > 64) s = 64;
  return s;
}

class ShardedService {
 public:
  /// One Targets per shard, each registering DISTINCT structure instances
  /// (shards share nothing).  `base` configures every shard identically
  /// except for the derived wal_dir / metrics domain.  The structure
  /// instances outlive the ShardedService, exactly as with Service.
  ShardedService(std::vector<Targets> shard_targets, ServiceConfig base)
      : router_sink_(&metrics::Registry::global().sink("otb.service.router")) {
    if (shard_targets.empty()) shard_targets.push_back(Targets{});
    const std::size_t n = shard_targets.size();
    if (n > 1 && !base.wal_dir.empty()) {
      // Wal::open_for_append mkdirs one level; the shared base must exist
      // before any shard opens `<base>/shard-<i>`.
      ::mkdir(base.wal_dir.c_str(), 0755);
    }
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ServiceConfig cfg = base;
      if (n > 1) {
        if (!cfg.wal_dir.empty()) {
          cfg.wal_dir += "/shard-" + std::to_string(i);
        }
        if (cfg.metrics == nullptr) {
          cfg.metrics = &metrics::Registry::global().sink(
              "otb.service.s" + std::to_string(i));
        }
      }
      shards_.push_back(
          std::make_unique<Service>(shard_targets[i], std::move(cfg)));
    }
  }

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  Service& shard(std::size_t i) { return *shards_[i]; }

  /// Owner shard of `req`, or -1 when no single shard owns its key set
  /// (see the fail-closed routing rules above).  Single-shard services
  /// never reject: shard 0 owns everything.
  int route(const Request& req) const {
    if (shards_.size() == 1) return 0;
    if (req.steps.empty()) return 0;  // shard 0 fails it as malformed
    int owner = -1;
    for (const Step& s : req.steps) {
      if (s.key_from >= 0) return -1;  // key bound at runtime: unroutable
      switch (s.verb) {
        case Verb::kPopMin:
        case Verb::kMin:
        case Verb::kRange:
          return -1;  // keyless or key-space-spanning
        default:
          break;
      }
      const int o = static_cast<int>(
          shard_of_key(s.key, static_cast<unsigned>(shards_.size())));
      if (owner == -1) owner = o;
      if (owner != o) return -1;  // literal keys span shards
    }
    return owner;
  }

  /// Submit through the router.  Same contract as Service::submit — always
  /// returns a valid future; unroutable scripts complete kFailed before
  /// returning (and bump svc_cross_shard in "otb.service.router").
  ResponseFuture submit(Request req) {
    const int owner = route(req);
    if (owner < 0) {
      router_sink_->add(metrics::CounterId::kSvcCrossShard);
      Pending* p = new Pending;
      p->req = std::move(req);
      p->enqueue_ns = now_ns();
      ResponseFuture fut(p);
      complete(p, SvcStatus::kFailed);
      return fut;
    }
    return shards_[static_cast<std::size_t>(owner)]->submit(std::move(req));
  }

  /// Per-shard recovery, before start() (same rule as Service::recover).
  /// `seed_shard` re-runs the crashed run's deterministic pre-seeding for
  /// one shard (it receives the shard index).  Returns one report per
  /// shard, in shard order.
  std::vector<RecoveryReport> recover(
      const std::function<void(std::size_t)>& seed_shard = {}) {
    std::vector<RecoveryReport> reports;
    reports.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      reports.push_back(shards_[i]->recover(
          seed_shard ? std::function<void()>([&, i] { seed_shard(i); })
                     : std::function<void()>{}));
    }
    return reports;
  }

  void start() {
    for (auto& s : shards_) s->start();
  }

  /// Stops every shard (full drain each).  Idempotent, like Service::stop.
  void stop() {
    for (auto& s : shards_) s->stop();
  }

  /// True while every shard accepts — the sharded analogue of
  /// Service::accepting() (shards only disagree transiently during stop()).
  bool accepting() const {
    for (const auto& s : shards_) {
      if (!s->accepting()) return false;
    }
    return true;
  }

 private:
  std::vector<std::unique_ptr<Service>> shards_;
  metrics::MetricsSink* router_sink_;
};

}  // namespace otb::service
