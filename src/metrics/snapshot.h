// Stable snapshot types: what a `MetricsSink` / `Registry` read produces.
// Snapshots are plain values — safe to copy, diff, serialise, and compare
// long after the sinks that produced them are gone.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "metrics/abort_reason.h"
#include "metrics/histogram.h"

namespace otb::metrics {

/// Operation counters a sink maintains.  Abort totals are *not* here: they
/// are kept per `AbortReason` and summed on demand, so the taxonomy can
/// never disagree with the total.
enum class CounterId : unsigned {
  kCommits = 0,
  kAttempts,
  kReads,
  kWrites,
  kValidations,
  kLockCasFailures,
  kLockAcquisitions,
  kLockSpins,
  kValidationsFast,
  kValidationsFull,
  kHintHitLocal,
  kHintHitCached,
  kHintMiss,
  // Service-plane request accounting (domain "otb.service"): the admission
  // and completion ledger.  svc_enqueued = svc-completed-ok + svc_expired +
  // svc_failed once the service has drained; svc_rejected requests never
  // enter a queue.
  kSvcEnqueued,
  kSvcRejected,
  kSvcExpired,
  kSvcFailed,
  kSvcBatches,
  kSvcBatchSplits,
  // Multi-op script surface (schema otb.metrics/4): svc_scripts counts
  // admitted requests with more than one step, svc_script_steps the total
  // steps admitted (svc_script_steps >= svc_enqueued), svc_guard_aborts the
  // requests completed via a solo guard failure (a subset of the kOk
  // completions counted in batch_size.total).
  kSvcScripts,
  kSvcScriptSteps,
  kSvcGuardAborts,
  // Durability surface (schema otb.metrics/5): wal_appends counts commit
  // records written to the write-ahead log, wal_bytes the bytes those
  // records occupy on disk (headers included), wal_fsyncs the fsync(2)
  // calls issued by the group-commit policy (docs/DURABILITY.md).
  kWalAppends,
  kWalFsyncs,
  kWalBytes,
  // Multi-version read surface (schema otb.metrics/6, src/otb/mv.h):
  // mv_snapshot_reads counts read-only transactions served entirely from
  // version chains (no validation, no abort), mv_version_misses the ones
  // that fell back to the validated path because a chain no longer held an
  // entry at the snapshot stamp, mv_versions_reclaimed the ring evictions
  // writers caused while publishing new versions.  svc_read_only (domain
  // "otb.service") counts scripts the service routed down the snapshot
  // path: svc_read_only == mv_snapshot_reads + mv_version_misses in any
  // service domain — these completions bypass the queue, so they are NOT
  // part of the svc_enqueued ledger.
  kMvSnapshotReads,
  kMvVersionMisses,
  kMvVersionsReclaimed,
  kSvcReadOnly,
  // Network front end + key-space sharding (schema otb.metrics/7):
  // svc_cross_shard counts scripts rejected kFailed at the shard router
  // because their key set spans shards or is unroutable under hash
  // partitioning (keyless verbs, ranges, runtime-bound keys — see
  // docs/SERVICE.md "Network server & sharding"); net_accepts counts
  // connections accepted by the epoll server, net_frames_in decoded
  // request frames, net_backpressure transitions of a connection into the
  // paused state (reading suspended at a high-water mark).
  kSvcCrossShard,
  kNetAccepts,
  kNetFramesIn,
  kNetBackpressure,
  // Contention-manager / transaction-fusion surface (schema otb.metrics/8,
  // src/service/fusion.h): svc_split_retries counts the split-retry events
  // that actually divided a multi-request batch (a subset of the
  // svc_batch_splits attempt-budget exhaustions, which also cover singleton
  // re-runs); svc_fused counts requests whose ownership moved to another
  // worker's commit unit via fusion; fusion_unions counts the commit-unit
  // merges themselves (one per adopted batch, so svc_fused >=
  // fusion_unions); fusion_fallbacks counts donated batches nobody adopted
  // before the donor's spin budget lapsed — the batch fell back to
  // split-retry.
  kSvcSplitRetries,
  kSvcFused,
  kFusionUnions,
  kFusionFallbacks,
};

inline constexpr std::size_t kCounterCount = 37;

constexpr std::string_view to_string(CounterId id) {
  switch (id) {
    case CounterId::kCommits:
      return "commits";
    case CounterId::kAttempts:
      return "attempts";
    case CounterId::kReads:
      return "reads";
    case CounterId::kWrites:
      return "writes";
    case CounterId::kValidations:
      return "validations";
    case CounterId::kLockCasFailures:
      return "lock_cas_failures";
    case CounterId::kLockAcquisitions:
      return "lock_acquisitions";
    case CounterId::kLockSpins:
      return "lock_spins";
    case CounterId::kValidationsFast:
      return "validations_fast";
    case CounterId::kValidationsFull:
      return "validations_full";
    case CounterId::kHintHitLocal:
      return "hint_hit_local";
    case CounterId::kHintHitCached:
      return "hint_hit_cached";
    case CounterId::kHintMiss:
      return "hint_miss";
    case CounterId::kSvcEnqueued:
      return "svc_enqueued";
    case CounterId::kSvcRejected:
      return "svc_rejected";
    case CounterId::kSvcExpired:
      return "svc_expired";
    case CounterId::kSvcFailed:
      return "svc_failed";
    case CounterId::kSvcBatches:
      return "svc_batches";
    case CounterId::kSvcBatchSplits:
      return "svc_batch_splits";
    case CounterId::kSvcScripts:
      return "svc_scripts";
    case CounterId::kSvcScriptSteps:
      return "svc_script_steps";
    case CounterId::kSvcGuardAborts:
      return "svc_guard_aborts";
    case CounterId::kWalAppends:
      return "wal_appends";
    case CounterId::kWalFsyncs:
      return "wal_fsyncs";
    case CounterId::kWalBytes:
      return "wal_bytes";
    case CounterId::kMvSnapshotReads:
      return "mv_snapshot_reads";
    case CounterId::kMvVersionMisses:
      return "mv_version_misses";
    case CounterId::kMvVersionsReclaimed:
      return "mv_versions_reclaimed";
    case CounterId::kSvcReadOnly:
      return "svc_read_only";
    case CounterId::kSvcCrossShard:
      return "svc_cross_shard";
    case CounterId::kNetAccepts:
      return "net_accepts";
    case CounterId::kNetFramesIn:
      return "net_frames_in";
    case CounterId::kNetBackpressure:
      return "net_backpressure";
    case CounterId::kSvcSplitRetries:
      return "svc_split_retries";
    case CounterId::kSvcFused:
      return "svc_fused";
    case CounterId::kFusionUnions:
      return "fusion_unions";
    case CounterId::kFusionFallbacks:
      return "fusion_fallbacks";
  }
  return "?";
}

constexpr std::size_t index(CounterId id) { return static_cast<std::size_t>(id); }

/// Timed phases of one transaction attempt.  `kAttempt` is the whole
/// attempt (begin -> commit/abort); validation and commit are the phases
/// the paper's critical-path analysis (Fig 6.2) decomposes.
enum class Phase : unsigned {
  kAttempt = 0,
  kValidation,
  kCommit,
  // Service-plane enqueue-to-completion latency: what a client of the
  // request path experiences, queueing included (domain "otb.service").
  kService,
  // Write-ahead-log fsync latency: one sample per fsync(2) issued by the
  // group-commit policy (domain "otb.service", docs/DURABILITY.md).
  kWalFsync,
};

inline constexpr std::size_t kPhaseCount = 5;

constexpr std::string_view to_string(Phase p) {
  switch (p) {
    case Phase::kAttempt:
      return "attempt";
    case Phase::kValidation:
      return "validation";
    case Phase::kCommit:
      return "commit";
    case Phase::kService:
      return "service";
    case Phase::kWalFsync:
      return "wal_fsync";
  }
  return "?";
}

constexpr std::size_t index(Phase p) { return static_cast<std::size_t>(p); }

struct PhaseSnapshot {
  std::uint64_t count = 0;     // attempts that contributed a sample
  std::uint64_t total_ns = 0;  // summed nanoseconds across samples
  std::array<std::uint64_t, Histogram::kBuckets> log2_buckets{};

  bool operator==(const PhaseSnapshot&) const = default;
};

/// Traversal-length distribution: one sample per structure traversal, the
/// value being the number of node hops (bucketed log2 like phase latency).
/// `count` always equals the bucket sum — both are bumped from the same
/// tally flush (`MetricsSink::record_traversal_slice`).
struct TraversalSnapshot {
  std::uint64_t count = 0;        // traversals sampled
  std::uint64_t total_steps = 0;  // summed node hops across samples
  std::array<std::uint64_t, Histogram::kBuckets> log2_buckets{};

  bool operator==(const TraversalSnapshot&) const = default;
};

/// Generic log2-bucketed sample series.  The service plane records two per
/// sink: queue depth observed at each batch pop and the size of each
/// executed batch (mean = total / count).
struct SeriesSnapshot {
  std::uint64_t count = 0;  // samples recorded
  std::uint64_t total = 0;  // summed sample values
  std::array<std::uint64_t, Histogram::kBuckets> log2_buckets{};

  bool operator==(const SeriesSnapshot&) const = default;
};

/// Point-in-time copy of one sink (one reporting domain).
struct SinkSnapshot {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<std::uint64_t, kAbortReasonCount> aborts{};
  std::array<PhaseSnapshot, kPhaseCount> phases{};
  TraversalSnapshot traversals{};
  SeriesSnapshot queue_depth{};
  SeriesSnapshot batch_size{};
  // Version-chain entries inspected per resolve on the snapshot-read path
  // (1 == newest version matched; mean = total / count).
  SeriesSnapshot mv_chain_len{};
  // Merged commit-unit size after each fusion union: one sample per
  // adoption, valued at the adopter's batch size post-merge.  Identity:
  // fused_set_size.count == fusion_unions.
  SeriesSnapshot fused_set_size{};

  std::uint64_t counter(CounterId id) const { return counters[index(id)]; }
  std::uint64_t aborts_for(AbortReason r) const { return aborts[index(r)]; }
  std::uint64_t aborts_total() const {
    std::uint64_t sum = 0;
    for (const auto v : aborts) sum += v;
    return sum;
  }
  const PhaseSnapshot& phase(Phase p) const { return phases[index(p)]; }

  SinkSnapshot& operator+=(const SinkSnapshot& o) {
    for (std::size_t i = 0; i < kCounterCount; ++i) counters[i] += o.counters[i];
    for (std::size_t i = 0; i < kAbortReasonCount; ++i) aborts[i] += o.aborts[i];
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      phases[i].count += o.phases[i].count;
      phases[i].total_ns += o.phases[i].total_ns;
      for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
        phases[i].log2_buckets[b] += o.phases[i].log2_buckets[b];
    }
    traversals.count += o.traversals.count;
    traversals.total_steps += o.traversals.total_steps;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
      traversals.log2_buckets[b] += o.traversals.log2_buckets[b];
    queue_depth.count += o.queue_depth.count;
    queue_depth.total += o.queue_depth.total;
    batch_size.count += o.batch_size.count;
    batch_size.total += o.batch_size.total;
    mv_chain_len.count += o.mv_chain_len.count;
    mv_chain_len.total += o.mv_chain_len.total;
    fused_set_size.count += o.fused_set_size.count;
    fused_set_size.total += o.fused_set_size.total;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      queue_depth.log2_buckets[b] += o.queue_depth.log2_buckets[b];
      batch_size.log2_buckets[b] += o.batch_size.log2_buckets[b];
      mv_chain_len.log2_buckets[b] += o.mv_chain_len.log2_buckets[b];
      fused_set_size.log2_buckets[b] += o.fused_set_size.log2_buckets[b];
    }
    return *this;
  }

  bool operator==(const SinkSnapshot&) const = default;
};

/// Multi-domain snapshot: what `Registry::snapshot()` returns.  Domains are
/// named "stm.NOrec", "otb.tx", "boosted", ... and kept in registration
/// order (stable across a run).
struct Snapshot {
  std::vector<std::pair<std::string, SinkSnapshot>> domains;

  const SinkSnapshot* find(std::string_view name) const {
    for (const auto& [n, s] : domains)
      if (n == name) return &s;
    return nullptr;
  }

  bool operator==(const Snapshot&) const = default;

  /// Human-readable table (one row per domain) for quick printf debugging.
  std::string to_table() const {
    std::string out =
        "domain                     commits    aborts  attempts     reads    writes\n";
    char line[160];
    for (const auto& [name, s] : domains) {
      std::snprintf(line, sizeof(line), "%-24s %9llu %9llu %9llu %9llu %9llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(s.counter(CounterId::kCommits)),
                    static_cast<unsigned long long>(s.aborts_total()),
                    static_cast<unsigned long long>(s.counter(CounterId::kAttempts)),
                    static_cast<unsigned long long>(s.counter(CounterId::kReads)),
                    static_cast<unsigned long long>(s.counter(CounterId::kWrites)));
      out += line;
    }
    return out;
  }
};

}  // namespace otb::metrics
