// Abort-reason taxonomy shared by every transactional runtime (the
// replacement for the old single `aborts` counter).  Each retry-loop abort
// is attributed to exactly one reason, so the per-reason counters in a
// `MetricsSink` always sum to the total abort count — the accounting the
// paper's evaluation (commit/abort ratios, Table 5.1; abort-source
// comparisons, §3.4) is built on.
#pragma once

#include <cstddef>
#include <string_view>

namespace otb::metrics {

enum class AbortReason : unsigned {
  kNone = 0,          // no abort (committed attempt)
  kValidation,        // memory read-set validation failed
  kLockFail,          // failed CAS / try-lock on shared state (orec, seqlock)
  kSemanticConflict,  // OTB semantic read-set or pre_commit validation failed
  kExplicit,          // user-thrown TxAbort
  kInvalidated,       // doomed by a committer's invalidation scan
  kContentionManager, // self-aborted by the contention-manager policy
  kRingWrap,          // RingSTM reader fell behind a wrapped ring
  kHtmConflict,       // simulated-HTM conflict abort
  kHtmCapacity,       // simulated-HTM capacity abort
  kHtmSpurious,       // simulated-HTM spurious (interrupt/fault) abort
  kHtmBusy,           // simulated-HTM could not take the commit window
};

inline constexpr std::size_t kAbortReasonCount = 12;

constexpr std::string_view to_string(AbortReason r) {
  switch (r) {
    case AbortReason::kNone:
      return "none";
    case AbortReason::kValidation:
      return "validation";
    case AbortReason::kLockFail:
      return "lock_fail";
    case AbortReason::kSemanticConflict:
      return "semantic_conflict";
    case AbortReason::kExplicit:
      return "explicit";
    case AbortReason::kInvalidated:
      return "invalidated";
    case AbortReason::kContentionManager:
      return "contention_manager";
    case AbortReason::kRingWrap:
      return "ring_wrap";
    case AbortReason::kHtmConflict:
      return "htm_conflict";
    case AbortReason::kHtmCapacity:
      return "htm_capacity";
    case AbortReason::kHtmSpurious:
      return "htm_spurious";
    case AbortReason::kHtmBusy:
      return "htm_busy";
  }
  return "?";
}

constexpr std::size_t index(AbortReason r) { return static_cast<std::size_t>(r); }

/// What one `atomically(fn)` call did: the harmonised return type of every
/// retry loop (standalone OTB, STM runtime, integration layer, HTM-commit).
struct AttemptReport {
  std::uint64_t commits = 0;  // 1 once the attempt that committed returns
  std::uint64_t aborts = 0;   // failed attempts before the commit
  AbortReason last_reason = AbortReason::kNone;

  std::uint64_t attempts() const { return commits + aborts; }
};

}  // namespace otb::metrics
