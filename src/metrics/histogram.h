// Log2-bucketed latency histogram.  Bucket b counts samples whose value v
// satisfies bit_width(v) == b, i.e. bucket 0 holds v == 0 and bucket b >= 1
// holds 2^(b-1) <= v < 2^b; the last bucket absorbs everything larger.
// 40 buckets cover [0, 2^39 ns) — up to ~9 minutes per sample, far beyond
// any transaction phase.  Buckets are sharded per thread like `Counter`
// cells, but with the whole bucket row per shard so one sample touches one
// cacheline owned by its thread.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

#include "metrics/counter.h"

namespace otb::metrics {

class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  static constexpr std::size_t bucket_of(std::uint64_t v) noexcept {
    const std::size_t b = static_cast<std::size_t>(std::bit_width(v));
    return b < kBuckets ? b : kBuckets - 1;
  }

  /// Inclusive lower bound of bucket `b` (0 for the zero bucket).
  static constexpr std::uint64_t bucket_floor(std::size_t b) noexcept {
    return b == 0 ? 0 : (std::uint64_t{1} << (b - 1));
  }

  void record(std::uint64_t v) noexcept {
    shards_[this_thread_shard() % kHistShards]
        .buckets[bucket_of(v)]
        .fetch_add(1, std::memory_order_relaxed);
  }

  /// Merge a pre-bucketed row in one pass (tally flush at attempt
  /// boundaries).  Returns the number of samples added.
  std::uint64_t add_buckets(
      const std::array<std::uint64_t, kBuckets>& row) noexcept {
    Shard& s = shards_[this_thread_shard() % kHistShards];
    std::uint64_t n = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (row[b] == 0) continue;
      s.buckets[b].fetch_add(row[b], std::memory_order_relaxed);
      n += row[b];
    }
    return n;
  }

  std::array<std::uint64_t, kBuckets> buckets() const noexcept {
    std::array<std::uint64_t, kBuckets> out{};
    for (const auto& s : shards_)
      for (std::size_t b = 0; b < kBuckets; ++b)
        out[b] += s.buckets[b].load(std::memory_order_relaxed);
    return out;
  }

  std::uint64_t count() const noexcept {
    std::uint64_t sum = 0;
    for (const auto v : buckets()) sum += v;
    return sum;
  }

  void reset() noexcept {
    for (auto& s : shards_)
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }

 private:
  // Fewer shards than `Counter` (a full bucket row is 5 cachelines, not 1);
  // histogram records happen once per attempt, not once per operation, so
  // the residual sharing is invisible.
  static constexpr std::size_t kHistShards = 8;
  struct alignas(kCacheLine) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };
  std::array<Shard, kHistShards> shards_{};
};

}  // namespace otb::metrics
