// MetricsSink: the instrument bundle one reporting domain writes into.
//
// A sink owns sharded counters (one per `CounterId`), per-reason abort
// counters, and per-phase timers + log2 histograms.  Transaction contexts
// never write it mid-attempt: they accumulate into a plain `TxTally` and
// flush the delta here once per attempt (`record_attempt`), so the hot path
// costs a handful of relaxed fetch_adds per *attempt*, not per operation.
//
// Injection: runtimes default to a named sink in `Registry::global()`;
// tests pass their own instance through `Config::metrics` (the in-memory
// fake — same type, just unregistered).
#pragma once

#include <cstdint>

#include "metrics/abort_reason.h"
#include "metrics/counter.h"
#include "metrics/histogram.h"
#include "metrics/snapshot.h"
#include "metrics/tally.h"

namespace otb::metrics {

class MetricsSink {
 public:
  void add(CounterId id, std::uint64_t n = 1) noexcept {
    counters_[index(id)].add(n);
  }

  void record_abort(AbortReason r) noexcept { aborts_[index(r)].add(1); }

  /// Feed one phase sample into both the timer and the histogram.
  void record_phase(Phase p, std::uint64_t ns) noexcept {
    timers_[index(p)].record(ns);
    histograms_[index(p)].record(ns);
  }

  /// Flush one finished attempt.  `d` is the tally delta accumulated during
  /// that attempt; `committed` selects commit vs abort accounting, and `r`
  /// attributes the abort.  Zero fields are skipped, so algorithms that do
  /// not time phases (or do not spin on locks) pay nothing for them.
  void record_attempt(const TxTally& d, bool committed, AbortReason r) noexcept {
    add(CounterId::kAttempts);
    if (committed) {
      add(CounterId::kCommits);
    } else {
      record_abort(r);
    }
    if (d.reads != 0) add(CounterId::kReads, d.reads);
    if (d.writes != 0) add(CounterId::kWrites, d.writes);
    if (d.validations != 0) add(CounterId::kValidations, d.validations);
    if (d.validations_fast != 0) add(CounterId::kValidationsFast, d.validations_fast);
    if (d.validations_full != 0) add(CounterId::kValidationsFull, d.validations_full);
    if (d.lock_cas_failures != 0) add(CounterId::kLockCasFailures, d.lock_cas_failures);
    if (d.lock_acquisitions != 0) add(CounterId::kLockAcquisitions, d.lock_acquisitions);
    if (d.lock_spins != 0) add(CounterId::kLockSpins, d.lock_spins);
    if (d.mv_versions_reclaimed != 0)
      add(CounterId::kMvVersionsReclaimed, d.mv_versions_reclaimed);
    if (d.ns_total != 0) record_phase(Phase::kAttempt, d.ns_total);
    if (d.ns_validation != 0) record_phase(Phase::kValidation, d.ns_validation);
    if (d.ns_commit != 0) record_phase(Phase::kCommit, d.ns_commit);
    record_traversal_slice(d);
  }

  /// Flush only the traversal-hint slice of a tally delta.  Split out of
  /// `record_attempt` for hosts that account hardware retries outside the
  /// attempt protocol (HtmCommitRuntime flushes this directly).
  void record_traversal_slice(const TxTally& d) noexcept {
    if (d.hint_hit_local != 0) add(CounterId::kHintHitLocal, d.hint_hit_local);
    if (d.hint_hit_cached != 0) add(CounterId::kHintHitCached, d.hint_hit_cached);
    if (d.hint_miss != 0) add(CounterId::kHintMiss, d.hint_miss);
    if (d.traversals != 0) {
      // Derive the count from the bucket row so the two can never drift.
      traversal_count_.add(traversal_hist_.add_buckets(d.traversal_log2));
      if (d.traversal_steps != 0) traversal_steps_.add(d.traversal_steps);
    }
  }

  /// One queue-depth observation (service workers sample their shard's
  /// depth at every batch pop).  Direct sink write: pops happen once per
  /// batch, not per request, so there is no tally to defer through.
  void record_queue_depth(std::uint64_t depth) noexcept {
    queue_depth_count_.add(1);
    queue_depth_total_.add(depth);
    queue_depth_hist_.record(depth);
  }

  /// Size of one executed service batch.
  void record_batch_size(std::uint64_t n) noexcept {
    batch_size_count_.add(1);
    batch_size_total_.add(n);
    batch_size_hist_.record(n);
  }

  /// Size of one fused commit unit: the adopter's batch size right after a
  /// fusion union absorbed a donated batch (src/service/fusion.h).  One
  /// sample per union, so fused_set_size.count == fusion_unions by
  /// construction.
  void record_fused_set_size(std::uint64_t n) noexcept {
    fused_set_count_.add(1);
    fused_set_total_.add(n);
    fused_set_hist_.record(n);
  }

  /// Flush the chain-depth samples one snapshot read accumulated (one
  /// sample per version-chain resolve; `total` is the summed depths).  The
  /// count is derived from the bucket row so the two can never drift.
  void record_mv_chain_slice(
      std::uint64_t total,
      const std::array<std::uint64_t, Histogram::kBuckets>& row) noexcept {
    const std::uint64_t n = mv_chain_hist_.add_buckets(row);
    if (n != 0) mv_chain_count_.add(n);
    if (total != 0) mv_chain_total_.add(total);
  }

  std::uint64_t counter(CounterId id) const noexcept {
    return counters_[index(id)].total();
  }
  std::uint64_t aborts(AbortReason r) const noexcept {
    return aborts_[index(r)].total();
  }
  std::uint64_t aborts_total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& c : aborts_) sum += c.total();
    return sum;
  }

  SinkSnapshot snapshot() const {
    SinkSnapshot s;
    for (std::size_t i = 0; i < kCounterCount; ++i) s.counters[i] = counters_[i].total();
    for (std::size_t i = 0; i < kAbortReasonCount; ++i) s.aborts[i] = aborts_[i].total();
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      s.phases[i].count = timers_[i].count();
      s.phases[i].total_ns = timers_[i].total_ns();
      s.phases[i].log2_buckets = histograms_[i].buckets();
    }
    s.traversals.count = traversal_count_.total();
    s.traversals.total_steps = traversal_steps_.total();
    s.traversals.log2_buckets = traversal_hist_.buckets();
    s.queue_depth.count = queue_depth_count_.total();
    s.queue_depth.total = queue_depth_total_.total();
    s.queue_depth.log2_buckets = queue_depth_hist_.buckets();
    s.batch_size.count = batch_size_count_.total();
    s.batch_size.total = batch_size_total_.total();
    s.batch_size.log2_buckets = batch_size_hist_.buckets();
    s.mv_chain_len.count = mv_chain_count_.total();
    s.mv_chain_len.total = mv_chain_total_.total();
    s.mv_chain_len.log2_buckets = mv_chain_hist_.buckets();
    s.fused_set_size.count = fused_set_count_.total();
    s.fused_set_size.total = fused_set_total_.total();
    s.fused_set_size.log2_buckets = fused_set_hist_.buckets();
    return s;
  }

  void reset() noexcept {
    for (auto& c : counters_) c.reset();
    for (auto& c : aborts_) c.reset();
    for (auto& t : timers_) t.reset();
    for (auto& h : histograms_) h.reset();
    traversal_count_.reset();
    traversal_steps_.reset();
    traversal_hist_.reset();
    queue_depth_count_.reset();
    queue_depth_total_.reset();
    queue_depth_hist_.reset();
    batch_size_count_.reset();
    batch_size_total_.reset();
    batch_size_hist_.reset();
    mv_chain_count_.reset();
    mv_chain_total_.reset();
    mv_chain_hist_.reset();
    fused_set_count_.reset();
    fused_set_total_.reset();
    fused_set_hist_.reset();
  }

 private:
  std::array<Counter, kCounterCount> counters_{};
  std::array<Counter, kAbortReasonCount> aborts_{};
  std::array<NsTimer, kPhaseCount> timers_{};
  std::array<Histogram, kPhaseCount> histograms_{};
  Counter traversal_count_{};
  Counter traversal_steps_{};
  Histogram traversal_hist_{};
  Counter queue_depth_count_{};
  Counter queue_depth_total_{};
  Histogram queue_depth_hist_{};
  Counter batch_size_count_{};
  Counter batch_size_total_{};
  Histogram batch_size_hist_{};
  Counter mv_chain_count_{};
  Counter mv_chain_total_{};
  Histogram mv_chain_hist_{};
  Counter fused_set_count_{};
  Counter fused_set_total_{};
  Histogram fused_set_hist_{};
};

}  // namespace otb::metrics
