// Process-wide registry of named sinks ("domains").  Runtimes that are not
// handed an explicit sink register themselves here under a stable name
// ("stm.NOrec", "otb.tx", "boosted", ...); `snapshot()` copies every domain
// into one `Snapshot` for export.  Sink addresses are stable for the life
// of the process (unique_ptr storage), so hot paths cache the pointer.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "metrics/sink.h"
#include "metrics/snapshot.h"

namespace otb::metrics {

class Registry {
 public:
  static Registry& global() {
    static Registry r;
    return r;
  }

  /// Find-or-create the sink for `name`.  The returned reference never
  /// moves or dies.
  MetricsSink& sink(std::string_view name) {
    std::lock_guard<std::mutex> g(mu_);
    for (const auto& [n, s] : sinks_)
      if (n == name) return *s;
    sinks_.emplace_back(std::string(name), std::make_unique<MetricsSink>());
    return *sinks_.back().second;
  }

  Snapshot snapshot() const {
    Snapshot out;
    std::lock_guard<std::mutex> g(mu_);
    out.domains.reserve(sinks_.size());
    for (const auto& [n, s] : sinks_) out.domains.emplace_back(n, s->snapshot());
    return out;
  }

  /// Zero every registered sink (measurement-phase boundaries; tests).
  void reset() {
    std::lock_guard<std::mutex> g(mu_);
    for (const auto& [n, s] : sinks_) s->reset();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::unique_ptr<MetricsSink>>> sinks_;
};

}  // namespace otb::metrics
