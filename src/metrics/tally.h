// Per-transaction-context tally: plain (non-atomic) fields bumped on the
// algorithm hot path, flushed to the shared `MetricsSink` only at attempt
// boundaries.  Field names deliberately match the historical `TxStats`
// struct so algorithm code (`this->stats_.reads += 1`) is unchanged; the
// public `TxStats` is now a compatibility view generated from this tally.
#pragma once

#include <array>
#include <cstdint>

#include "metrics/abort_reason.h"

namespace otb::metrics {

struct TxTally {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t attempts = 0;

  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t validations = 0;
  // Per-structure outcomes of commit-sequence-gated validation: a
  // `validations` pass fans out into one fast/full tick per attached
  // structure (see OtbDs::validate_gated).
  std::uint64_t validations_fast = 0;
  std::uint64_t validations_full = 0;

  std::uint64_t lock_cas_failures = 0;
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t lock_spins = 0;

  // Populated only when Config::collect_timing (or the OTB timing knob) is
  // on; zero deltas are skipped at flush so untimed runs pay nothing.
  std::uint64_t ns_validation = 0;
  std::uint64_t ns_commit = 0;
  std::uint64_t ns_total = 0;

  std::array<std::uint64_t, kAbortReasonCount> aborts_by{};
  AbortReason last_reason = AbortReason::kNone;

  TxTally& operator+=(const TxTally& o) {
    commits += o.commits;
    aborts += o.aborts;
    attempts += o.attempts;
    reads += o.reads;
    writes += o.writes;
    validations += o.validations;
    validations_fast += o.validations_fast;
    validations_full += o.validations_full;
    lock_cas_failures += o.lock_cas_failures;
    lock_acquisitions += o.lock_acquisitions;
    lock_spins += o.lock_spins;
    ns_validation += o.ns_validation;
    ns_commit += o.ns_commit;
    ns_total += o.ns_total;
    for (std::size_t i = 0; i < kAbortReasonCount; ++i) aborts_by[i] += o.aborts_by[i];
    if (o.last_reason != AbortReason::kNone) last_reason = o.last_reason;
    return *this;
  }

  /// Field-wise difference against an earlier copy of the same tally (all
  /// fields are monotone, so plain subtraction is exact).
  TxTally delta_since(const TxTally& prev) const {
    TxTally d;
    d.commits = commits - prev.commits;
    d.aborts = aborts - prev.aborts;
    d.attempts = attempts - prev.attempts;
    d.reads = reads - prev.reads;
    d.writes = writes - prev.writes;
    d.validations = validations - prev.validations;
    d.validations_fast = validations_fast - prev.validations_fast;
    d.validations_full = validations_full - prev.validations_full;
    d.lock_cas_failures = lock_cas_failures - prev.lock_cas_failures;
    d.lock_acquisitions = lock_acquisitions - prev.lock_acquisitions;
    d.lock_spins = lock_spins - prev.lock_spins;
    d.ns_validation = ns_validation - prev.ns_validation;
    d.ns_commit = ns_commit - prev.ns_commit;
    d.ns_total = ns_total - prev.ns_total;
    for (std::size_t i = 0; i < kAbortReasonCount; ++i)
      d.aborts_by[i] = aborts_by[i] - prev.aborts_by[i];
    d.last_reason = last_reason;
    return d;
  }
};

}  // namespace otb::metrics
