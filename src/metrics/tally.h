// Per-transaction-context tally: plain (non-atomic) fields bumped on the
// algorithm hot path, flushed to the shared `MetricsSink` only at attempt
// boundaries.  Field names deliberately match the historical `TxStats`
// struct so algorithm code (`this->stats_.reads += 1`) is unchanged; the
// public `TxStats` is now a compatibility view generated from this tally.
#pragma once

#include <array>
#include <cstdint>

#include "metrics/abort_reason.h"
#include "metrics/histogram.h"

namespace otb::metrics {

struct TxTally {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t attempts = 0;

  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t validations = 0;
  // Per-structure outcomes of commit-sequence-gated validation: a
  // `validations` pass fans out into one fast/full tick per attached
  // structure (see OtbDs::validate_gated).
  std::uint64_t validations_fast = 0;
  std::uint64_t validations_full = 0;

  std::uint64_t lock_cas_failures = 0;
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t lock_spins = 0;

  // Traversal-hint outcomes: exactly one tick per boosted operation that
  // performed a physical traversal while hints are enabled (write-set
  // short-circuits never traverse and tick nothing).
  std::uint64_t hint_hit_local = 0;   // seeded from the descriptor's own positions
  std::uint64_t hint_hit_cached = 0;  // seeded from the per-thread predecessor cache
  std::uint64_t hint_miss = 0;        // no usable hint: traversal started at head
  // Traversal-length samples (node hops per operation, summed across the
  // restarts inside one operation).  `traversals` always equals the bucket
  // sum; both are bumped together on the structure hot path.
  std::uint64_t traversals = 0;
  std::uint64_t traversal_steps = 0;
  std::array<std::uint64_t, Histogram::kBuckets> traversal_log2{};

  // Version-chain ring evictions caused by this context's publications
  // (multi-version layer, src/otb/mv.h) — flushed to kMvVersionsReclaimed.
  std::uint64_t mv_versions_reclaimed = 0;

  // Populated only when Config::collect_timing (or the OTB timing knob) is
  // on; zero deltas are skipped at flush so untimed runs pay nothing.
  std::uint64_t ns_validation = 0;
  std::uint64_t ns_commit = 0;
  std::uint64_t ns_total = 0;

  std::array<std::uint64_t, kAbortReasonCount> aborts_by{};
  AbortReason last_reason = AbortReason::kNone;

  TxTally& operator+=(const TxTally& o) {
    commits += o.commits;
    aborts += o.aborts;
    attempts += o.attempts;
    reads += o.reads;
    writes += o.writes;
    validations += o.validations;
    validations_fast += o.validations_fast;
    validations_full += o.validations_full;
    lock_cas_failures += o.lock_cas_failures;
    lock_acquisitions += o.lock_acquisitions;
    lock_spins += o.lock_spins;
    hint_hit_local += o.hint_hit_local;
    hint_hit_cached += o.hint_hit_cached;
    hint_miss += o.hint_miss;
    traversals += o.traversals;
    traversal_steps += o.traversal_steps;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
      traversal_log2[i] += o.traversal_log2[i];
    mv_versions_reclaimed += o.mv_versions_reclaimed;
    ns_validation += o.ns_validation;
    ns_commit += o.ns_commit;
    ns_total += o.ns_total;
    for (std::size_t i = 0; i < kAbortReasonCount; ++i) aborts_by[i] += o.aborts_by[i];
    if (o.last_reason != AbortReason::kNone) last_reason = o.last_reason;
    return *this;
  }

  /// Field-wise difference against an earlier copy of the same tally (all
  /// fields are monotone, so plain subtraction is exact).
  TxTally delta_since(const TxTally& prev) const {
    TxTally d;
    d.commits = commits - prev.commits;
    d.aborts = aborts - prev.aborts;
    d.attempts = attempts - prev.attempts;
    d.reads = reads - prev.reads;
    d.writes = writes - prev.writes;
    d.validations = validations - prev.validations;
    d.validations_fast = validations_fast - prev.validations_fast;
    d.validations_full = validations_full - prev.validations_full;
    d.lock_cas_failures = lock_cas_failures - prev.lock_cas_failures;
    d.lock_acquisitions = lock_acquisitions - prev.lock_acquisitions;
    d.lock_spins = lock_spins - prev.lock_spins;
    d.hint_hit_local = hint_hit_local - prev.hint_hit_local;
    d.hint_hit_cached = hint_hit_cached - prev.hint_hit_cached;
    d.hint_miss = hint_miss - prev.hint_miss;
    d.traversals = traversals - prev.traversals;
    d.traversal_steps = traversal_steps - prev.traversal_steps;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
      d.traversal_log2[i] = traversal_log2[i] - prev.traversal_log2[i];
    d.mv_versions_reclaimed = mv_versions_reclaimed - prev.mv_versions_reclaimed;
    d.ns_validation = ns_validation - prev.ns_validation;
    d.ns_commit = ns_commit - prev.ns_commit;
    d.ns_total = ns_total - prev.ns_total;
    for (std::size_t i = 0; i < kAbortReasonCount; ++i)
      d.aborts_by[i] = aborts_by[i] - prev.aborts_by[i];
    d.last_reason = last_reason;
    return d;
  }
};

}  // namespace otb::metrics
