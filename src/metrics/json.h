// JSON export/import for snapshots.
//
// Schema ("otb.metrics/8"):
//   {
//     "schema": "otb.metrics/8",
//     "domains": {
//       "stm.NOrec": {
//         "counters": { "commits": 12, "attempts": 14, ... },   // all ids
//         "aborts":   { "validation": 2, "lock_fail": 0, ... }, // all reasons
//         "phases": {
//           "attempt":    { "count": 14, "total_ns": 9001, "log2_buckets": [..40..] },
//           "validation": { ... },
//           "commit":     { ... },
//           "service":    { ... },
//           "wal_fsync":  { ... }
//         },
//         "traversals":  { "count": 9, "total_steps": 120, "log2_buckets": [..40..] },
//         "queue_depth": { "count": 3, "total": 17, "log2_buckets": [..40..] },
//         "batch_size":  { "count": 3, "total": 21, "log2_buckets": [..40..] },
//         "mv_chain_len": { "count": 5, "total": 7, "log2_buckets": [..40..] },
//         "fused_set_size": { "count": 2, "total": 40, "log2_buckets": [..40..] }
//       }, ...
//     }
//   }
//
// /2 over /1: three hint counters (hint_hit_local/hint_hit_cached/hint_miss)
// and the per-domain "traversals" length histogram.
// /3 over /2: the service-plane slice — six svc_* counters, the "service"
// enqueue-to-completion phase, and the "queue_depth" / "batch_size" series.
// /4 over /3: the multi-op script surface — svc_scripts / svc_script_steps /
// svc_guard_aborts counters (see snapshot.h for their ledger relations).
// /5 over /4: the durability surface — wal_appends / wal_fsyncs / wal_bytes
// counters and the "wal_fsync" phase histogram (docs/DURABILITY.md).
// /6 over /5: the multi-version read surface — mv_snapshot_reads /
// mv_version_misses / mv_versions_reclaimed / svc_read_only counters and
// the "mv_chain_len" series (src/otb/mv.h).
// /7 over /6: the network front end + sharding surface — svc_cross_shard
// (shard-router fail-closed rejections), net_accepts / net_frames_in /
// net_backpressure (epoll server accounting, src/service/net.h).
// /8 over /7: the contention-manager / transaction-fusion surface —
// svc_split_retries / svc_fused / fusion_unions / fusion_fallbacks counters
// and the "fused_set_size" series (src/service/fusion.h).
//
// The importer is deliberately strict — every counter/reason/phase key must
// be present and no unknown keys are allowed — which is exactly what the
// `metrics_smoke` checker needs: an algorithm that stops reporting a field
// fails the parse, not just a comparison.  It accepts the subset of JSON we
// emit (objects, arrays, unsigned integers, escape-free strings).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "metrics/snapshot.h"

namespace otb::metrics {

inline constexpr std::string_view kJsonSchemaId = "otb.metrics/8";

namespace detail {

inline void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

inline void append_bucketed_json(
    std::string& out, std::string_view total_key, std::uint64_t count,
    std::uint64_t total,
    const std::array<std::uint64_t, Histogram::kBuckets>& buckets) {
  out += "{\"count\": ";
  append_u64(out, count);
  out += ", \"";
  out += total_key;
  out += "\": ";
  append_u64(out, total);
  out += ", \"log2_buckets\": [";
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    if (b != 0) out += ", ";
    append_u64(out, buckets[b]);
  }
  out += "]}";
}

inline void append_phase_json(std::string& out, const PhaseSnapshot& p) {
  append_bucketed_json(out, "total_ns", p.count, p.total_ns, p.log2_buckets);
}

inline void append_sink_json(std::string& out, const SinkSnapshot& s,
                             std::string_view indent) {
  out += "{\n";
  out += indent;
  out += "  \"counters\": {";
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    if (i != 0) out += ", ";
    out += '"';
    out += to_string(static_cast<CounterId>(i));
    out += "\": ";
    append_u64(out, s.counters[i]);
  }
  out += "},\n";
  out += indent;
  out += "  \"aborts\": {";
  bool first = true;
  for (std::size_t i = 1; i < kAbortReasonCount; ++i) {  // skip kNone
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += to_string(static_cast<AbortReason>(i));
    out += "\": ";
    append_u64(out, s.aborts[i]);
  }
  out += "},\n";
  out += indent;
  out += "  \"phases\": {\n";
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    out += indent;
    out += "    \"";
    out += to_string(static_cast<Phase>(i));
    out += "\": ";
    append_phase_json(out, s.phases[i]);
    if (i + 1 != kPhaseCount) out += ',';
    out += '\n';
  }
  out += indent;
  out += "  },\n";
  out += indent;
  out += "  \"traversals\": ";
  append_bucketed_json(out, "total_steps", s.traversals.count,
                       s.traversals.total_steps, s.traversals.log2_buckets);
  out += ",\n";
  out += indent;
  out += "  \"queue_depth\": ";
  append_bucketed_json(out, "total", s.queue_depth.count, s.queue_depth.total,
                       s.queue_depth.log2_buckets);
  out += ",\n";
  out += indent;
  out += "  \"batch_size\": ";
  append_bucketed_json(out, "total", s.batch_size.count, s.batch_size.total,
                       s.batch_size.log2_buckets);
  out += ",\n";
  out += indent;
  out += "  \"mv_chain_len\": ";
  append_bucketed_json(out, "total", s.mv_chain_len.count, s.mv_chain_len.total,
                       s.mv_chain_len.log2_buckets);
  out += ",\n";
  out += indent;
  out += "  \"fused_set_size\": ";
  append_bucketed_json(out, "total", s.fused_set_size.count,
                       s.fused_set_size.total, s.fused_set_size.log2_buckets);
  out += '\n';
  out += indent;
  out += '}';
}

/// Recursive-descent parser for the emitted subset of JSON.
class Parser {
 public:
  explicit Parser(std::string_view s) : s_(s) {}

  bool at_end() {
    skip_ws();
    return i_ == s_.size();
  }

  bool consume(char c) {
    skip_ws();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  bool peek_is(char c) {
    skip_ws();
    return i_ < s_.size() && s_[i_] == c;
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (i_ >= s_.size() || s_[i_] != '"') return false;
    ++i_;
    out.clear();
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') return false;  // we never emit escapes
      out += s_[i_++];
    }
    if (i_ >= s_.size()) return false;
    ++i_;  // closing quote
    return true;
  }

  bool parse_u64(std::uint64_t& out) {
    skip_ws();
    if (i_ >= s_.size() || s_[i_] < '0' || s_[i_] > '9') return false;
    out = 0;
    while (i_ < s_.size() && s_[i_] >= '0' && s_[i_] <= '9') {
      out = out * 10 + static_cast<std::uint64_t>(s_[i_] - '0');
      ++i_;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\n' || s_[i_] == '\t' || s_[i_] == '\r'))
      ++i_;
  }

  std::string_view s_;
  std::size_t i_ = 0;
};

/// Parse a {"key": u64, ...} object whose complete key set must equal
/// `names` (order-independent).  Writes values by key index into `out`.
template <typename NameOf>
bool parse_u64_object(Parser& p, std::size_t first, std::size_t count,
                      NameOf name_of, std::uint64_t* out) {
  if (!p.consume('{')) return false;
  std::size_t seen = 0;
  bool got[64] = {};
  if (!p.peek_is('}')) {
    do {
      std::string key;
      if (!p.parse_string(key) || !p.consume(':')) return false;
      std::size_t idx = count;
      for (std::size_t i = first; i < count; ++i)
        if (key == name_of(i)) idx = i;
      if (idx == count || got[idx]) return false;  // unknown or duplicate key
      got[idx] = true;
      ++seen;
      if (!p.parse_u64(out[idx])) return false;
    } while (p.consume(','));
  }
  if (!p.consume('}')) return false;
  return seen == count - first;  // every expected key present
}

inline bool parse_bucketed(Parser& p, std::string_view total_key,
                           std::uint64_t& count, std::uint64_t& total,
                           std::array<std::uint64_t, Histogram::kBuckets>& row) {
  if (!p.consume('{')) return false;
  bool got_count = false, got_total = false, got_buckets = false;
  do {
    std::string key;
    if (!p.parse_string(key) || !p.consume(':')) return false;
    if (key == "count" && !got_count) {
      got_count = true;
      if (!p.parse_u64(count)) return false;
    } else if (key == total_key && !got_total) {
      got_total = true;
      if (!p.parse_u64(total)) return false;
    } else if (key == "log2_buckets" && !got_buckets) {
      got_buckets = true;
      if (!p.consume('[')) return false;
      for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
        if (b != 0 && !p.consume(',')) return false;
        if (!p.parse_u64(row[b])) return false;
      }
      if (!p.consume(']')) return false;
    } else {
      return false;
    }
  } while (p.consume(','));
  if (!p.consume('}')) return false;
  return got_count && got_total && got_buckets;
}

inline bool parse_phase(Parser& p, PhaseSnapshot& out) {
  return parse_bucketed(p, "total_ns", out.count, out.total_ns,
                        out.log2_buckets);
}

inline bool parse_sink(Parser& p, SinkSnapshot& out) {
  if (!p.consume('{')) return false;
  bool got_counters = false, got_aborts = false, got_phases = false;
  bool got_traversals = false, got_queue_depth = false, got_batch_size = false;
  bool got_mv_chain_len = false, got_fused_set_size = false;
  do {
    std::string key;
    if (!p.parse_string(key) || !p.consume(':')) return false;
    if (key == "counters" && !got_counters) {
      got_counters = true;
      if (!parse_u64_object(
              p, 0, kCounterCount,
              [](std::size_t i) { return to_string(static_cast<CounterId>(i)); },
              out.counters.data()))
        return false;
    } else if (key == "aborts" && !got_aborts) {
      got_aborts = true;
      if (!parse_u64_object(
              p, 1, kAbortReasonCount,
              [](std::size_t i) { return to_string(static_cast<AbortReason>(i)); },
              out.aborts.data()))
        return false;
    } else if (key == "phases" && !got_phases) {
      got_phases = true;
      if (!p.consume('{')) return false;
      bool got[kPhaseCount] = {};
      do {
        std::string phase_key;
        if (!p.parse_string(phase_key) || !p.consume(':')) return false;
        std::size_t idx = kPhaseCount;
        for (std::size_t i = 0; i < kPhaseCount; ++i)
          if (phase_key == to_string(static_cast<Phase>(i))) idx = i;
        if (idx == kPhaseCount || got[idx]) return false;
        got[idx] = true;
        if (!parse_phase(p, out.phases[idx])) return false;
      } while (p.consume(','));
      if (!p.consume('}')) return false;
      for (const bool g : got)
        if (!g) return false;
    } else if (key == "traversals" && !got_traversals) {
      got_traversals = true;
      if (!parse_bucketed(p, "total_steps", out.traversals.count,
                          out.traversals.total_steps,
                          out.traversals.log2_buckets))
        return false;
    } else if (key == "queue_depth" && !got_queue_depth) {
      got_queue_depth = true;
      if (!parse_bucketed(p, "total", out.queue_depth.count,
                          out.queue_depth.total, out.queue_depth.log2_buckets))
        return false;
    } else if (key == "batch_size" && !got_batch_size) {
      got_batch_size = true;
      if (!parse_bucketed(p, "total", out.batch_size.count,
                          out.batch_size.total, out.batch_size.log2_buckets))
        return false;
    } else if (key == "mv_chain_len" && !got_mv_chain_len) {
      got_mv_chain_len = true;
      if (!parse_bucketed(p, "total", out.mv_chain_len.count,
                          out.mv_chain_len.total,
                          out.mv_chain_len.log2_buckets))
        return false;
    } else if (key == "fused_set_size" && !got_fused_set_size) {
      got_fused_set_size = true;
      if (!parse_bucketed(p, "total", out.fused_set_size.count,
                          out.fused_set_size.total,
                          out.fused_set_size.log2_buckets))
        return false;
    } else {
      return false;
    }
  } while (p.consume(','));
  if (!p.consume('}')) return false;
  return got_counters && got_aborts && got_phases && got_traversals &&
         got_queue_depth && got_batch_size && got_mv_chain_len &&
         got_fused_set_size;
}

/// Parse one complete snapshot document (the outer `{"schema": ..,
/// "domains": ..}` object) starting at the parser's cursor.  Does not
/// require end-of-input, so snapshot documents can be nested inside larger
/// files (the bench-baseline wrapper `metrics_check --compare` reads).
inline bool parse_snapshot(Parser& p, Snapshot& out) {
  if (!p.consume('{')) return false;
  bool got_schema = false, got_domains = false;
  do {
    std::string key;
    if (!p.parse_string(key) || !p.consume(':')) return false;
    if (key == "schema" && !got_schema) {
      got_schema = true;
      std::string id;
      if (!p.parse_string(id) || id != kJsonSchemaId) return false;
    } else if (key == "domains" && !got_domains) {
      got_domains = true;
      if (!p.consume('{')) return false;
      if (!p.peek_is('}')) {
        do {
          std::string name;
          if (!p.parse_string(name) || !p.consume(':')) return false;
          SinkSnapshot s;
          if (!parse_sink(p, s)) return false;
          out.domains.emplace_back(std::move(name), s);
        } while (p.consume(','));
      }
      if (!p.consume('}')) return false;
    } else {
      return false;
    }
  } while (p.consume(','));
  if (!p.consume('}')) return false;
  return got_schema && got_domains;
}

}  // namespace detail

inline std::string to_json(const Snapshot& snap) {
  std::string out = "{\n  \"schema\": \"";
  out += kJsonSchemaId;
  out += "\",\n  \"domains\": {";
  bool first = true;
  for (const auto& [name, s] : snap.domains) {
    if (!first) out += ',';
    first = false;
    out += "\n    \"";
    out += name;
    out += "\": ";
    detail::append_sink_json(out, s, "    ");
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

/// Strict import: returns nullopt on any syntax or schema violation
/// (missing counter/reason/phase key, unknown key, wrong schema id, bucket
/// array of the wrong length, trailing garbage).
inline std::optional<Snapshot> from_json(std::string_view text) {
  detail::Parser p(text);
  Snapshot out;
  if (!detail::parse_snapshot(p, out) || !p.at_end()) return std::nullopt;
  return out;
}

}  // namespace otb::metrics
