// Per-thread sharded counters: the hot-path primitive of otb::metrics.
//
// A `Counter` is an array of cacheline-aligned cells; each thread hashes to
// a fixed cell (round-robin slot assigned on first use) and bumps it with a
// relaxed fetch_add.  With <= kShards threads there is no inter-thread
// contention at all — the cell lives in the incrementing core's cache — and
// above that only modest sharing.  Reads (`total()`) sum the cells and are
// expected to be rare (snapshot time).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "common/platform.h"

namespace otb::metrics {

/// Number of cacheline-aligned cells per counter.  Power of two so the
/// thread-slot hash is a mask.  32 cells * 64 B = 2 KiB per counter.
inline constexpr std::size_t kShards = 32;

/// Stable per-thread shard index in [0, kShards).  Round-robin assignment
/// on first use keeps the first kShards threads perfectly contention-free.
inline std::size_t this_thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return slot;
}

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    cells_[this_thread_shard()].value.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& c : cells_) sum += c.value.load(std::memory_order_relaxed);
    return sum;
  }

  /// Zero every cell.  Racy against concurrent writers by design — only
  /// used between measurement phases / in tests.
  void reset() noexcept {
    for (auto& c : cells_) c.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(kCacheLine) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Cell, kShards> cells_{};
};

/// Accumulated nanoseconds + sample count (mean = total/count).  Both halves
/// are sharded `Counter`s, so recording stays contention-free.
class NsTimer {
 public:
  void record(std::uint64_t ns) noexcept {
    total_ns_.add(ns);
    count_.add(1);
  }

  std::uint64_t total_ns() const noexcept { return total_ns_.total(); }
  std::uint64_t count() const noexcept { return count_.total(); }

  void reset() noexcept {
    total_ns_.reset();
    count_.reset();
  }

 private:
  Counter total_ns_;
  Counter count_;
};

}  // namespace otb::metrics
