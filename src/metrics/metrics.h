// Umbrella header for the otb::metrics observability subsystem.
//
//   Counter / NsTimer  — per-thread sharded, cacheline-aligned cells
//   Histogram          — log2-bucketed latencies (attempt/validation/commit)
//   AbortReason        — taxonomy replacing the old single `aborts` counter
//   TxTally            — per-context plain accumulator, flushed per attempt
//   MetricsSink        — injectable instrument bundle (one per domain)
//   Registry           — process-global named sinks -> Snapshot
//   to_json/from_json  — schema "otb.metrics/6" export + strict import
//
// See docs/METRICS.md for the counter catalogue and JSON schema.
#pragma once

#include "metrics/abort_reason.h"
#include "metrics/counter.h"
#include "metrics/histogram.h"
#include "metrics/json.h"
#include "metrics/registry.h"
#include "metrics/sink.h"
#include "metrics/snapshot.h"
#include "metrics/tally.h"
