// Plain-text table printer for the figure benches: one row per algorithm,
// one column per thread count (or parameter value), matching the series the
// paper plots.  Also emits a machine-greppable "shape:" line summarising
// who wins at the highest parallelism.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace otb::bench {

class SeriesTable {
 public:
  SeriesTable(std::string title, std::string col_label,
              std::vector<std::string> columns)
      : title_(std::move(title)),
        col_label_(std::move(col_label)),
        columns_(std::move(columns)) {}

  void add_row(const std::string& name, const std::vector<double>& values) {
    rows_.push_back({name, values});
  }

  void print(const char* unit = "ops/s") const {
    std::printf("\n== %s ==\n", title_.c_str());
    std::printf("%-22s", (col_label_ + " \\ series [" + unit + "]").c_str());
    for (const auto& c : columns_) std::printf("%12s", c.c_str());
    std::printf("\n");
    for (const auto& row : rows_) {
      std::printf("%-22s", row.name.c_str());
      for (const double v : row.values) std::printf("%12.0f", v);
      std::printf("\n");
    }
    print_shape();
  }

  /// Same layout but fractional values (ratios, milliseconds).
  void print_fractional(const char* unit) const {
    std::printf("\n== %s ==\n", title_.c_str());
    std::printf("%-22s", (col_label_ + " \\ series [" + unit + "]").c_str());
    for (const auto& c : columns_) std::printf("%12s", c.c_str());
    std::printf("\n");
    for (const auto& row : rows_) {
      std::printf("%-22s", row.name.c_str());
      for (const double v : row.values) std::printf("%12.3f", v);
      std::printf("\n");
    }
  }

 private:
  void print_shape() const {
    if (rows_.empty() || rows_.front().values.empty()) return;
    const std::size_t last = rows_.front().values.size() - 1;
    const Row* best = &rows_.front();
    for (const auto& row : rows_) {
      if (row.values.size() > last && row.values[last] > best->values[last]) {
        best = &row;
      }
    }
    std::printf("shape: winner@%s=%s is %s", col_label_.c_str(),
                columns_[last].c_str(), best->name.c_str());
    for (const auto& row : rows_) {
      if (&row != best && row.values[last] > 0) {
        std::printf("  [%.2fx vs %s]", best->values[last] / row.values[last],
                    row.name.c_str());
      }
    }
    std::printf("\n");
  }

  struct Row {
    std::string name;
    std::vector<double> values;
  };

  std::string title_;
  std::string col_label_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

}  // namespace otb::bench
