// Fixed-duration multi-threaded throughput driver used by every figure
// bench: warm-up phase, measured phase, per-thread op counters and STM
// stats, aggregated into ops/second.  Mirrors the paper's methodology
// (§3.3: "warm up phase ... followed by an execution ... during which the
// throughput is measured").
//
// Durations and thread sweeps honour the environment variables
//   OTB_BENCH_MS       measured milliseconds per data point (default 250)
//   OTB_BENCH_WARM_MS  warm-up milliseconds (default 50)
//   OTB_BENCH_THREADS  space-separated thread counts (default "1 2 4 8")
// so the full suite stays runnable in seconds on small hosts.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/platform.h"
#include "metrics/json.h"
#include "metrics/registry.h"
#include "stm/stats.h"

namespace otb::bench {

namespace detail {
inline std::string& metrics_json_path() {
  static std::string path;
  return path;
}
}  // namespace detail

/// Strip `--metrics-json=<path>` from argv (call before the benchmark
/// library parses flags; the environment variable OTB_METRICS_JSON works
/// too) and register an at-exit dump of the global metrics registry as
/// JSON.  Every runtime constructed without an injected sink lands in the
/// registry, so the dump covers all of them.
inline void install_metrics_json_exporter(int& argc, char** argv) {
  std::string& path = detail::metrics_json_path();
  if (const char* env = std::getenv("OTB_METRICS_JSON")) path = env;
  constexpr std::string_view kFlag = "--metrics-json=";
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.substr(0, kFlag.size()) == kFlag) {
      path = std::string(arg.substr(kFlag.size()));
    } else {
      argv[out++] = argv[i];
    }
  }
  for (int i = out; i < argc; ++i) argv[i] = nullptr;
  argc = out;
  if (path.empty()) return;
  // Touch the registry singleton now so it outlives the handler: atexit
  // handlers and static destructors run in reverse registration order, and
  // the first sink is otherwise only created mid-run.
  metrics::Registry::global();
  std::atexit([] {
    const std::string& p = detail::metrics_json_path();
    std::FILE* f = std::fopen(p.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "metrics-json: cannot open %s\n", p.c_str());
      return;
    }
    const std::string body =
        metrics::to_json(metrics::Registry::global().snapshot());
    std::fwrite(body.data(), 1, body.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  });
}

enum class Phase : int { kWarmup = 0, kMeasure = 1, kDone = 2 };

struct ThreadResult {
  std::uint64_t ops = 0;
  std::uint64_t aborts = 0;
  stm::TxStats stats{};
};

struct RunResult {
  double ops_per_sec = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t total_aborts = 0;
  stm::TxStats stats{};
};

/// Worker contract: loop "one operation per iteration" until phase() is
/// kDone, incrementing out.ops only while phase() is kMeasure.
using Worker =
    std::function<void(unsigned tid, const std::function<Phase()>& phase,
                       ThreadResult& out)>;

inline unsigned env_unsigned(const char* name, unsigned fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? static_cast<unsigned>(std::strtoul(v, nullptr, 10))
                      : fallback;
}

inline std::vector<unsigned> thread_counts() {
  std::vector<unsigned> counts;
  if (const char* v = std::getenv("OTB_BENCH_THREADS")) {
    std::istringstream in(v);
    unsigned n;
    while (in >> n) counts.push_back(n);
  }
  if (counts.empty()) counts = {1, 2, 4, 8};
  return counts;
}

inline unsigned measure_ms() { return env_unsigned("OTB_BENCH_MS", 250); }
inline unsigned warmup_ms() { return env_unsigned("OTB_BENCH_WARM_MS", 50); }

/// Run `worker` on `threads` threads for warm_ms + run_ms.
inline RunResult run_fixed_duration(unsigned threads, unsigned warm_ms,
                                    unsigned run_ms, const Worker& worker) {
  std::atomic<int> phase{static_cast<int>(Phase::kWarmup)};
  const auto phase_fn = [&phase]() {
    return static_cast<Phase>(phase.load(std::memory_order_acquire));
  };
  std::vector<ThreadResult> results(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      char name[16];
      std::snprintf(name, sizeof(name), "bench/w%u", t);
      set_this_thread_name(name);
      worker(t, phase_fn, results[t]);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(warm_ms));
  const std::uint64_t t0 = now_ns();
  phase.store(static_cast<int>(Phase::kMeasure), std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));
  phase.store(static_cast<int>(Phase::kDone), std::memory_order_release);
  const std::uint64_t t1 = now_ns();
  for (auto& th : pool) th.join();

  RunResult out;
  for (const auto& r : results) {
    out.total_ops += r.ops;
    out.total_aborts += r.aborts;
    out.stats += r.stats;
  }
  const double seconds = double(t1 - t0) * 1e-9;
  out.ops_per_sec = seconds > 0 ? double(out.total_ops) / seconds : 0;
  return out;
}

}  // namespace otb::bench
